// Command figure1 regenerates the paper's Figure 1: for each of the six
// problems it measures the AMPC algorithm's rounds against the classic MPC
// baseline's rounds over a sweep of input sizes. The absolute values depend
// on simulation constants; the figure's claim is the SHAPE — AMPC round
// counts are flat (or log log) in n while the MPC baselines grow like
// log n (pointer doubling, Luby, Borůvka) or the diameter (label
// propagation).
//
//	go run ./cmd/figure1 [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"ampc"
	"ampc/internal/graph"
	"ampc/internal/mpc"
	"ampc/internal/rng"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweep for smoke testing")
	flag.Parse()

	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	if *quick {
		sizes = []int{1 << 9, 1 << 11}
	}
	const p = 64 // MPC machines

	fmt.Println("Figure 1 reproduction: rounds, AMPC vs MPC baselines")
	fmt.Println("(shapes, not absolute values, are the claim under test)")

	// Row 5 first in the paper's narrative: the 2-Cycle problem.
	fmt.Println("\n== 2-Cycle: AMPC Shrink (O(1/eps)) vs MPC pointer doubling (Theta(log n)) ==")
	fmt.Printf("%10s %14s %14s\n", "n", "AMPC rounds", "MPC rounds")
	for _, n := range sizes {
		r := rng.New(uint64(n), 1)
		g := graph.TwoCycleInstance(n, n%3 != 0, r)
		a, err := ampc.TwoCycle(g, ampc.Options{Seed: uint64(n)})
		fail(err)
		m, err := mpc.TwoCycle(g, p, r)
		fail(err)
		fmt.Printf("%10d %14d %14d\n", n, a.Telemetry.Rounds, m.Rounds)
	}

	fmt.Println("\n== Connectivity: AMPC IncreaseDegrees (O(log log n)) vs MPC label propagation (Theta(D)) ==")
	fmt.Println("   (hash-to-min, the stronger O(log n) MapReduce baseline, shown for comparison)")
	fmt.Printf("%10s %10s %14s %14s %14s\n", "n (grid)", "diameter", "AMPC rounds", "LabelProp", "HashToMin")
	for _, n := range sizes {
		side := isqrt(n)
		g := graph.Grid(side, side)
		a, err := ampc.Connectivity(g, ampc.Options{Seed: uint64(n)})
		fail(err)
		m := mpc.LabelPropagation(g, p)
		htm := mpc.HashToMin(g, p)
		fmt.Printf("%10d %10d %14d %14d %14d\n", side*side, 2*(side-1), a.Telemetry.Rounds, m.Rounds, htm.Rounds)
	}
	fmt.Printf("%10s %10s %14s %14s\n", "n (gnm)", "~log n", "AMPC rounds", "MPC rounds")
	for _, n := range sizes {
		r := rng.New(uint64(n), 2)
		g := graph.ConnectedGNM(n, 4*n, r)
		a, err := ampc.Connectivity(g, ampc.Options{Seed: uint64(n)})
		fail(err)
		m := mpc.LabelPropagation(g, p)
		fmt.Printf("%10d %10s %14d %14d\n", n, "-", a.Telemetry.Rounds, m.Rounds)
	}

	fmt.Println("\n== Minimum spanning forest: AMPC local Prim (O(log log n)) vs MPC Boruvka (Theta(log n)) ==")
	fmt.Printf("%10s %14s %14s %12s\n", "n", "AMPC rounds", "MPC rounds", "MPC phases")
	for _, n := range sizes {
		r := rng.New(uint64(n), 3)
		g := graph.WithRandomWeights(graph.ConnectedGNM(n, 4*n, r), r)
		a, err := ampc.MSF(g, ampc.Options{Seed: uint64(n)})
		fail(err)
		m := mpc.BoruvkaMSF(g, p)
		fmt.Printf("%10d %14d %14d %12d\n", n, a.Telemetry.Rounds, m.Rounds, m.Phases)
	}

	fmt.Println("\n== Maximal independent set: AMPC LFMIS (O(1/eps)) vs MPC Luby (Theta(log n)) ==")
	fmt.Printf("%10s %14s %14s %12s\n", "n", "AMPC rounds", "MPC rounds", "Luby iters")
	for _, n := range sizes {
		r := rng.New(uint64(n), 4)
		g := graph.GNM(n, 4*n, r)
		a, err := ampc.MIS(g, ampc.Options{Seed: uint64(n)})
		fail(err)
		m := mpc.LubyMIS(g, p, r)
		fmt.Printf("%10d %14d %14d %12d\n", n, a.Telemetry.Rounds, m.Rounds, m.Iterations)
	}

	fmt.Println("\n== Forest connectivity: AMPC Euler tours (O(1/eps)) vs MPC label propagation (Theta(tree depth)) ==")
	fmt.Printf("%10s %14s %14s\n", "n", "AMPC rounds", "MPC rounds")
	for _, n := range sizes {
		r := rng.New(uint64(n), 5)
		g := graph.RandomForest(n, 8, r)
		a, err := ampc.ForestConnectivity(g, ampc.Options{Seed: uint64(n)})
		fail(err)
		m := mpc.LabelPropagation(g, p)
		fmt.Printf("%10d %14d %14d\n", n, a.Telemetry.Rounds, m.Rounds)
	}

	fmt.Println("\n== 2-edge connectivity: AMPC BC-labeling (O(log log n)) vs MPC pipeline proxy ==")
	fmt.Println("(MPC proxy = label-prop connectivity + pointer-doubling list ranking + label-prop again,")
	fmt.Println(" the three stages any MPC implementation of Tarjan-Vishkin pays)")
	fmt.Printf("%10s %14s %14s\n", "n", "AMPC rounds", "MPC rounds")
	for _, n := range sizes {
		if n > 1<<14 {
			break // the AMPC pipeline multiplies stage constants; keep the sweep snappy
		}
		r := rng.New(uint64(n), 6)
		g := graph.ConnectedGNM(n, 2*n, r)
		a, err := ampc.Biconnectivity(g, ampc.Options{Seed: uint64(n)})
		fail(err)
		lp := mpc.LabelPropagation(g, p)
		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[i] = i + 1
		}
		next[n-1] = -1
		lr := mpc.PointerDoublingListRank(next, p)
		proxy := 2*lp.Rounds + lr.Rounds
		fmt.Printf("%10d %14d %14d\n", n, a.Telemetry.Rounds, proxy)
	}
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
