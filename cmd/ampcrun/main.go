// Command ampcrun runs one AMPC algorithm on a generated workload and
// prints the result summary and cost telemetry. All dispatch goes through
// the ampc registry: -algo accepts any name listed by -list, and new
// algorithms registered with ampc.Register appear here with no changes.
//
// Usage:
//
//	ampcrun -algo connectivity -graph gnm -n 10000 -m 40000 -eps 0.5 -seed 1
//	ampcrun -algo mis -graph gnm -n 5000 -m 20000
//	ampcrun -algo msf -graph cgnm -n 5000 -m 20000
//	ampcrun -algo twocycle -graph cycle2 -n 8192
//	ampcrun -algo forestconn -graph forest -n 10000 -trees 20
//	ampcrun -algo biconn -graph gnm -n 2000 -m 4000
//	ampcrun -algo listrank -n 100000
//	ampcrun -list
//
// Graphs: gnm, cgnm (connected), powerlaw (Chung-Lu, gamma 2.5), skew
// (edges concentrated on a 1% hub set — dup-heavy keys), cycle (one
// cycle), cycle2 (two cycles), grid (sqrt(n) x sqrt(n)), path, star, tree,
// forest, clique, and mgnm — a streamed uniform multigraph that is never
// materialized as an edge list, the out-of-core ingest workload
// (connectivity only; combine with -backend file -residency drop to bound
// resident memory at one store generation).
//
// -stream prints every round's statistics as it completes; -bench emits
// one machine-readable JSON line per run for perf trajectories — including
// the write volume and the freeze_merge_ms/freeze_build_ms split, so a
// freeze delta is attributable to data movement versus index builds — and
// -bench-out appends that line to a trajectory file (see BENCH_*.json);
// -workers sets the runtime's worker-pool size (outputs never depend on
// it); -backend selects where each round's frozen store lives (mem keeps it
// in process, file publishes it write-behind to a single mmap'd segment
// file per store under -store-dir, rpc ships it to the shardd fleet named
// by -servers with -replication copies per shard; outputs are identical for
// every backend); -timeout aborts the run through context cancellation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"ampc"
	"ampc/internal/sysmem"
)

func main() {
	var (
		algo     = flag.String("algo", "connectivity", "algorithm name from the registry (see -list)")
		list     = flag.Bool("list", false, "list registered algorithms and exit")
		gkind    = flag.String("graph", "gnm", "workload: gnm|cgnm|powerlaw|skew|cycle|cycle2|grid|path|star|tree|forest|clique|mgnm (streamed, connectivity only)")
		input    = flag.String("input", "", "read the graph from an edge-list file instead of generating one")
		n        = flag.Int("n", 10000, "vertex count")
		m        = flag.Int("m", 0, "edge count (default 4n for gnm/cgnm)")
		trees    = flag.Int("trees", 10, "tree count for -graph forest")
		eps      = flag.Float64("eps", 0.5, "space exponent: S = n^eps")
		seed     = flag.Uint64("seed", 1, "random seed")
		check    = flag.Bool("check", true, "verify against the sequential oracle")
		fault    = flag.Float64("faults", 0, "per-round machine failure probability (output must not change)")
		workers  = flag.Int("workers", 0, "OS worker goroutines per round (0 = GOMAXPROCS); outputs are identical for any value")
		backend  = flag.String("backend", "mem", "store backend: mem (in-process), file (write-behind segment files) or rpc (shardd servers); outputs are identical")
		storeDir = flag.String("store-dir", "", "directory for -backend=file segment files (default: a temp dir removed after the run)")
		resid    = flag.String("residency", "", "file-backend memory policy for retired stores: retain (default) or drop (serve the previous round from mmap, freeing its memory)")
		servers  = flag.String("servers", "", "comma-separated shardd addresses for -backend=rpc, e.g. 127.0.0.1:7701,127.0.0.1:7702")
		replicas = flag.Int("replication", 1, "copies of each shard across the -servers fleet (rpc backend)")
		rpcTO    = flag.Duration("rpc-timeout", 0, "per-request timeout against shardd servers (0 = default 2s)")
		rpcCool  = flag.Duration("rpc-cooldown", 0, "how long a failing shardd server stays marked down (0 = default 250ms)")
		unpinned = flag.Bool("unpinned", false, "stripe machines to workers dynamically instead of pinning m to worker m mod W")
		noCache  = flag.Bool("no-worker-cache", false, "disable the per-worker read cache over the previous round's data (rpc backend)")
		asJSON   = flag.Bool("json", false, "emit telemetry as JSON (per-round breakdown included)")
		bench    = flag.Bool("bench", false, "emit one machine-readable JSON line (algo, n, m, rounds, queries, wall time)")
		benchOut = flag.String("bench-out", "", "append the -bench JSON line to this trajectory file (implies -bench)")
		stream   = flag.Bool("stream", false, "print each round's stats as it completes")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	flag.Parse()
	if *benchOut != "" {
		*bench = true
	}

	if *list {
		for _, name := range ampc.Algorithms() {
			spec, _ := ampc.Lookup(name)
			fmt.Printf("%-16s [%s] %s\n", name, spec.Input, spec.Description)
		}
		return
	}

	spec, ok := ampc.Lookup(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -algo %q; registered: %v\n", *algo, ampc.Algorithms())
		os.Exit(2)
	}
	if *m == 0 {
		*m = 4 * *n
	}

	eng := ampc.NewEngine(ampc.EngineOptions{
		Defaults: ampc.Options{
			Epsilon: *eps, Seed: *seed, FaultProb: *fault, Workers: *workers,
			Backend: *backend, StoreDir: *storeDir, Residency: *resid,
			Servers: splitServers(*servers), Replication: *replicas, RPCTimeout: *rpcTO,
			RPCDownCooldown: *rpcCool, Unpinned: *unpinned, NoWorkerCache: *noCache,
		},
		Observer: roundPrinter(*stream),
	})
	// Under -bench the oracle check runs outside the timed window (below),
	// so wall_ms measures the algorithm alone.
	job := ampc.Job{Algo: *algo, Check: *check && !*bench}

	r := ampc.NewRNG(*seed, 0x7)
	var workload string
	var wn, wm int
	switch spec.Input {
	case ampc.InputList:
		next := make([]int, *n)
		for i := 0; i < *n-1; i++ {
			next[i] = i + 1
		}
		if *n > 0 {
			next[*n-1] = -1
		}
		job.Next = next
		workload, wn, wm = "list", *n, 0
	case ampc.InputGraph:
		if *gkind == "mgnm" && *input == "" {
			es := ampc.StreamGNM(*n, *m, *seed)
			job.Stream = es
			workload, wn, wm = *gkind, es.N(), es.M()
			break
		}
		g := loadOrMakeGraph(*input, gkind, *n, *m, *trees, r)
		job.Graph = g
		workload, wn, wm = *gkind, g.N(), g.M()
	case ampc.InputWeightedGraph:
		g := loadOrMakeGraph(*input, gkind, *n, *m, *trees, r)
		wg := ampc.WithRandomWeights(g, r)
		job.Weighted = wg
		workload, wn, wm = *gkind, wg.N(), wg.M()
	}
	if !*bench {
		fmt.Printf("workload: %s n=%d m=%d   eps=%.2f seed=%d\n", workload, wn, wm, *eps, *seed)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := eng.Run(ctx, job)
	wall := time.Since(start)
	fail(err)

	if *bench {
		checkStatus := ampc.CheckSkipped
		if *check && spec.Check != nil {
			if cerr := spec.Check(job, res); cerr != nil {
				log.Fatalf("oracle check failed: %v", cerr)
			}
			checkStatus = ampc.CheckPassed
		}
		printBenchLine(res, *backend, workload, wn, wm, *eps, *seed, wall, checkStatus, *benchOut)
		return
	}
	fmt.Printf("result: %s\n", res.Summary)
	if res.Check == ampc.CheckPassed {
		fmt.Println("oracle check passed")
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fail(enc.Encode(res.Telemetry))
	} else {
		printTelemetry(res.Telemetry, wall)
	}
}

// roundPrinter returns a streaming observer, or nil when -stream is off.
// Rounds go to stderr so stdout stays parseable under -json and -bench.
func roundPrinter(enabled bool) ampc.TelemetryObserver {
	if !enabled {
		return nil
	}
	return func(ev ampc.RoundEvent) {
		fmt.Fprintf(os.Stderr, "round %-24s queries=%-8d writes=%-8d maxMachine=%-6d maxShard=%-6d pairs=%d\n",
			ev.Round.Name, ev.Round.Queries, ev.Round.Writes,
			ev.Round.MaxMachineQueries, ev.Round.MaxShardLoad, ev.Round.Pairs)
	}
}

// benchLine is the stable machine-readable record emitted by -bench, one
// JSON object per line, for recording perf trajectories across commits.
type benchLine struct {
	Algo              string  `json:"algo"`
	Backend           string  `json:"backend,omitempty"`
	Workload          string  `json:"workload"`
	N                 int     `json:"n"`
	M                 int     `json:"m"`
	Epsilon           float64 `json:"eps"`
	Seed              uint64  `json:"seed"`
	Rounds            int     `json:"rounds"`
	Phases            int     `json:"phases"`
	TotalQueries      int64   `json:"queries"`
	TotalWrites       int64   `json:"writes"`
	MaxMachineQueries int     `json:"max_machine_queries"`
	MaxShardLoad      int64   `json:"max_shard_load"`
	CacheHits         int64   `json:"cache_hits"`
	RPCFrames         int64   `json:"rpc_frames"`
	P                 int     `json:"p"`
	S                 int     `json:"s"`
	WallMS            float64 `json:"wall_ms"`
	ExecMS            float64 `json:"exec_ms"`
	FreezeMS          float64 `json:"freeze_ms"`
	FreezeMergeMS     float64 `json:"freeze_merge_ms"`
	FreezeBuildMS     float64 `json:"freeze_build_ms"`
	PublishMS         float64 `json:"publish_ms"`
	RSSPeakMB         float64 `json:"rss_peak_mb"`
	Check             string  `json:"check"`
}

func printBenchLine(res *ampc.Result, backend, workload string, n, m int, eps float64, seed uint64, wall time.Duration, check ampc.CheckStatus, benchOut string) {
	t := res.Telemetry
	line := benchLine{
		Algo:              res.Algo,
		Backend:           backend,
		Workload:          workload,
		N:                 n,
		M:                 m,
		Epsilon:           eps,
		Seed:              seed,
		Rounds:            t.Rounds,
		Phases:            t.Phases,
		TotalQueries:      t.TotalQueries,
		TotalWrites:       t.TotalWrites,
		MaxMachineQueries: t.MaxMachineQueries,
		MaxShardLoad:      t.MaxShardLoad,
		CacheHits:         t.CacheHits,
		RPCFrames:         t.RPCFrames,
		P:                 t.P,
		S:                 t.S,
		WallMS:            float64(wall.Microseconds()) / 1000,
		ExecMS:            float64(t.ExecuteTime.Microseconds()) / 1000,
		FreezeMS:          float64(t.FreezeTime.Microseconds()) / 1000,
		FreezeMergeMS:     float64(t.FreezeMergeTime.Microseconds()) / 1000,
		FreezeBuildMS:     float64(t.FreezeBuildTime.Microseconds()) / 1000,
		PublishMS:         float64(t.PublishTime.Microseconds()) / 1000,
		RSSPeakMB:         math.Round(sysmem.PeakRSSMB()*10) / 10,
		Check:             check.String(),
	}
	out, err := json.Marshal(line)
	fail(err)
	fmt.Println(string(out))
	if benchOut != "" {
		f, err := os.OpenFile(benchOut, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		fail(err)
		_, err = f.Write(append(out, '\n'))
		fail(err)
		fail(f.Close())
	}
}

// splitServers parses the -servers flag: comma-separated addresses, blanks
// dropped, empty flag meaning no servers (validation rejects that for rpc).
func splitServers(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func loadOrMakeGraph(input string, gkind *string, n, m, trees int, r *ampc.RNG) *ampc.Graph {
	if input != "" {
		f, err := os.Open(input)
		fail(err)
		defer f.Close()
		g, err := ampc.ReadEdgeList(f)
		fail(err)
		*gkind = input
		return g
	}
	return makeGraph(*gkind, n, m, trees, r)
}

func makeGraph(kind string, n, m, trees int, r *ampc.RNG) *ampc.Graph {
	switch kind {
	case "gnm":
		return ampc.GNM(n, m, r)
	case "cgnm":
		return ampc.ConnectedGNM(n, m, r)
	case "powerlaw":
		return ampc.PowerLaw(n, m, r)
	case "skew":
		return ampc.SkewedDegree(n, m, ampc.HubCount(n), r)
	case "cycle":
		return ampc.TwoCycleInstance(n, true, r)
	case "cycle2":
		return ampc.TwoCycleInstance(n, false, r)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return ampc.Grid(side, side)
	case "path":
		return ampc.Path(n)
	case "star":
		return ampc.Star(n)
	case "tree":
		return ampc.RandomTree(n, r)
	case "forest":
		return ampc.RandomForest(n, trees, r)
	case "clique":
		return ampc.Clique(n)
	default:
		fmt.Fprintf(os.Stderr, "unknown -graph %q\n", kind)
		os.Exit(2)
		return nil
	}
}

func printTelemetry(t ampc.Telemetry, wall time.Duration) {
	fmt.Printf("\ncost (P=%d, S=%d):\n", t.P, t.S)
	fmt.Printf("  rounds              %d\n", t.Rounds)
	fmt.Printf("  phases              %d\n", t.Phases)
	fmt.Printf("  total queries       %d\n", t.TotalQueries)
	fmt.Printf("  max machine queries %d per round\n", t.MaxMachineQueries)
	fmt.Printf("  max shard load      %d per round\n", t.MaxShardLoad)
	if t.CacheHits > 0 || t.CacheMisses > 0 {
		fmt.Printf("  worker cache        %d hits / %d misses\n", t.CacheHits, t.CacheMisses)
	}
	if t.RPCFrames > 0 {
		fmt.Printf("  rpc read frames     %d\n", t.RPCFrames)
	}
	fmt.Printf("  execute time        %v\n", t.ExecuteTime.Round(time.Microsecond))
	fmt.Printf("  freeze time         %v (merge %v, build %v)\n", t.FreezeTime.Round(time.Microsecond),
		t.FreezeMergeTime.Round(time.Microsecond), t.FreezeBuildTime.Round(time.Microsecond))
	fmt.Printf("  publish time        %v\n", t.PublishTime.Round(time.Microsecond))
	fmt.Printf("  wall time           %v\n", wall.Round(time.Microsecond))
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
