// Command ampcrun runs one AMPC algorithm on a generated workload and
// prints the result summary and cost telemetry.
//
// Usage:
//
//	ampcrun -algo connectivity -graph gnm -n 10000 -m 40000 -eps 0.5 -seed 1
//	ampcrun -algo mis -graph gnm -n 5000 -m 20000
//	ampcrun -algo msf -graph cgnm -n 5000 -m 20000
//	ampcrun -algo twocycle -graph cycle2 -n 8192
//	ampcrun -algo forestconn -graph forest -n 10000 -trees 20
//	ampcrun -algo biconn -graph gnm -n 2000 -m 4000
//	ampcrun -algo listrank -n 100000
//
// Graphs: gnm, cgnm (connected), cycle (one cycle), cycle2 (two cycles),
// grid (sqrt(n) x sqrt(n)), path, star, tree, forest, clique.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"ampc"
)

func main() {
	var (
		algo   = flag.String("algo", "connectivity", "algorithm: twocycle|mis|matching|coloring|connectivity|msf|cycleconn|forestconn|listrank|biconn")
		gkind  = flag.String("graph", "gnm", "workload: gnm|cgnm|cycle|cycle2|grid|path|star|tree|forest|clique")
		input  = flag.String("input", "", "read the graph from an edge-list file instead of generating one")
		n      = flag.Int("n", 10000, "vertex count")
		m      = flag.Int("m", 0, "edge count (default 4n for gnm/cgnm)")
		trees  = flag.Int("trees", 10, "tree count for -graph forest")
		eps    = flag.Float64("eps", 0.5, "space exponent: S = n^eps")
		seed   = flag.Uint64("seed", 1, "random seed")
		check  = flag.Bool("check", true, "verify against the sequential oracle")
		fault  = flag.Float64("faults", 0, "per-round machine failure probability (output must not change)")
		asJSON = flag.Bool("json", false, "emit telemetry as JSON (per-round breakdown included)")
	)
	flag.Parse()

	opts := ampc.Options{Epsilon: *eps, Seed: *seed, FaultProb: *fault}
	r := ampc.NewRNG(*seed, 0x7)
	if *m == 0 {
		*m = 4 * *n
	}

	if *algo == "listrank" {
		runListRank(*n, opts)
		return
	}

	var g *ampc.Graph
	if *input != "" {
		f, err := os.Open(*input)
		fail(err)
		g, err = ampc.ReadEdgeList(f)
		f.Close()
		fail(err)
		*gkind = *input
	} else {
		g = makeGraph(*gkind, *n, *m, *trees, r)
	}
	fmt.Printf("workload: %s n=%d m=%d   eps=%.2f seed=%d\n", *gkind, g.N(), g.M(), *eps, *seed)

	var tel ampc.Telemetry
	switch *algo {
	case "twocycle":
		res, err := ampc.TwoCycle(g, opts)
		fail(err)
		fmt.Printf("result: single cycle = %v\n", res.SingleCycle)
		tel = res.Telemetry
	case "mis":
		res, err := ampc.MIS(g, opts)
		fail(err)
		size := 0
		for _, in := range res.InMIS {
			if in {
				size++
			}
		}
		fmt.Printf("result: MIS size = %d\n", size)
		if *check && !ampc.IsMIS(g, res.InMIS) {
			log.Fatal("oracle check failed: not an MIS")
		}
		tel = res.Telemetry
	case "matching":
		res, err := ampc.MaximalMatching(g, opts)
		fail(err)
		size := 0
		for _, in := range res.Matched {
			if in {
				size++
			}
		}
		fmt.Printf("result: matching size = %d\n", size)
		if *check && !ampc.IsMaximalMatching(g, res.Matched) {
			log.Fatal("oracle check failed: not a maximal matching")
		}
		tel = res.Telemetry
	case "coloring":
		res, err := ampc.GreedyColoring(g, opts)
		fail(err)
		colors := 0
		for _, c := range res.Color {
			if c+1 > colors {
				colors = c + 1
			}
		}
		fmt.Printf("result: %d colors (Δ+1 = %d)\n", colors, g.MaxDeg()+1)
		if *check && !ampc.IsProperColoring(g, res.Color) {
			log.Fatal("oracle check failed: coloring not proper")
		}
		tel = res.Telemetry
	case "connectivity":
		res, err := ampc.Connectivity(g, opts)
		fail(err)
		fmt.Printf("result: %d components\n", countLabels(res.Components))
		if *check && !ampc.SameLabeling(res.Components, ampc.Components(g)) {
			log.Fatal("oracle check failed: wrong components")
		}
		tel = res.Telemetry
	case "msf":
		wg := ampc.WithRandomWeights(g, r)
		res, err := ampc.MSF(wg, opts)
		fail(err)
		var total int64
		for _, e := range res.Edges {
			total += e.Weight
		}
		fmt.Printf("result: %d MSF edges, total weight %d\n", len(res.Edges), total)
		if *check {
			oracle := ampc.KruskalMSF(wg)
			var want int64
			for _, e := range oracle {
				want += e.Weight
			}
			if total != want || len(res.Edges) != len(oracle) {
				log.Fatal("oracle check failed: MSF differs from Kruskal")
			}
		}
		tel = res.Telemetry
	case "cycleconn":
		res, err := ampc.CycleConnectivity(g, opts)
		fail(err)
		fmt.Printf("result: %d cycles\n", countLabels(res.Components))
		if *check && !ampc.SameLabeling(res.Components, ampc.Components(g)) {
			log.Fatal("oracle check failed")
		}
		tel = res.Telemetry
	case "forestconn":
		res, err := ampc.ForestConnectivity(g, opts)
		fail(err)
		fmt.Printf("result: %d trees\n", countLabels(res.Components))
		if *check && !ampc.SameLabeling(res.Components, ampc.Components(g)) {
			log.Fatal("oracle check failed")
		}
		tel = res.Telemetry
	case "biconn":
		res, err := ampc.Biconnectivity(g, opts)
		fail(err)
		fmt.Printf("result: %d bridges, %d articulation points, %d 2-edge components\n",
			len(res.Bridges), len(res.ArticulationPoints), countLabels(res.TwoEdgeComponents))
		if *check && len(res.Bridges) != len(ampc.BridgesOracle(g)) {
			log.Fatal("oracle check failed: bridges differ")
		}
		tel = res.Telemetry
	default:
		fmt.Fprintf(os.Stderr, "unknown -algo %q\n", *algo)
		flag.Usage()
		os.Exit(2)
	}

	if *asJSON {
		printJSON(tel)
	} else {
		printTelemetry(tel)
	}
}

func printJSON(t ampc.Telemetry) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		log.Fatal(err)
	}
}

func runListRank(n int, opts ampc.Options) {
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = -1
	res, err := ampc.ListRanking(next, opts)
	fail(err)
	fmt.Printf("workload: list n=%d\n", n)
	fmt.Printf("result: tail rank = %d\n", res.Rank[n-1])
	printTelemetry(res.Telemetry)
}

func makeGraph(kind string, n, m, trees int, r *ampc.RNG) *ampc.Graph {
	switch kind {
	case "gnm":
		return ampc.GNM(n, m, r)
	case "cgnm":
		return ampc.ConnectedGNM(n, m, r)
	case "cycle":
		return ampc.TwoCycleInstance(n, true, r)
	case "cycle2":
		return ampc.TwoCycleInstance(n, false, r)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return ampc.Grid(side, side)
	case "path":
		return ampc.Path(n)
	case "star":
		return ampc.Star(n)
	case "tree":
		return ampc.RandomTree(n, r)
	case "forest":
		return ampc.RandomForest(n, trees, r)
	case "clique":
		return ampc.Clique(n)
	default:
		fmt.Fprintf(os.Stderr, "unknown -graph %q\n", kind)
		os.Exit(2)
		return nil
	}
}

func countLabels(labels []int) int {
	set := map[int]bool{}
	for _, l := range labels {
		set[l] = true
	}
	return len(set)
}

func printTelemetry(t ampc.Telemetry) {
	fmt.Printf("\ncost (P=%d, S=%d):\n", t.P, t.S)
	fmt.Printf("  rounds              %d\n", t.Rounds)
	fmt.Printf("  phases              %d\n", t.Phases)
	fmt.Printf("  total queries       %d\n", t.TotalQueries)
	fmt.Printf("  max machine queries %d per round\n", t.MaxMachineQueries)
	fmt.Printf("  max shard load      %d per round\n", t.MaxShardLoad)
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
