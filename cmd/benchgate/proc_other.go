//go:build !unix

package main

import (
	"errors"
	"os"
)

// Straggler chaos needs SIGSTOP/SIGCONT, which this platform lacks; the
// affected cell reports a chaos-action failure instead of pretending the
// pause happened. Use -scenario-fleet inproc here: Server.Pause gives the
// same held-request semantics without process signals.
var errNoStopSignal = errors.New("SIGSTOP/SIGCONT unsupported on this platform; use -scenario-fleet inproc")

func sigstop(*os.Process) error { return errNoStopSignal }

func sigcont(*os.Process) error { return errNoStopSignal }
