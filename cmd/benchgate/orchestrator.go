// The scenario orchestrator: launches a shard fleet (in-process loopback
// servers or real shardd processes), runs every workload × workers cell of
// a scenario through the Engine with chaos actions injected between
// rounds, and verifies each cell against the mem-backend oracle — the
// output must be byte-identical, or (for expected-blackout scenarios) the
// run must fail with the clean typed dds.ErrBackendUnavailable. Never a
// hang, never corruption. Each cell emits the same bench JSON line the
// perf gate consumes, extended with scenario/chaos_actions/workers/outcome
// fields so committed trajectories can gate degraded-mode latency.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"ampc"
	"ampc/internal/dds"
	"ampc/internal/rpc"
)

// chaosFleet is the control surface the orchestrator drives. *rpc.Fleet
// implements it in-process; procFleet implements it over real shardd
// processes (kill = SIGKILL, pause = SIGSTOP, resume = SIGCONT).
type chaosFleet interface {
	Addrs() []string
	Kill(i int) error
	Restart(i int) error
	Pause(i int) error
	Resume(i int) error
	Close() error
}

// scenarioRunner executes scenarios and caches what is reusable across
// cells: the mem-backend oracle per workload spec, and (proc mode) the
// shardd binary.
type scenarioRunner struct {
	fleetMode string // "inproc" or "proc"
	root      string // module root, for go build and shardd spawn
	timeout   time.Duration
	oracles   map[workloadSpec]*oracleResult
	sharddBin string // built lazily on first proc fleet
	binDir    string
}

type oracleResult struct {
	labels  []int
	summary string
}

func newScenarioRunner(fleetMode, root string, timeout time.Duration) *scenarioRunner {
	return &scenarioRunner{
		fleetMode: fleetMode,
		root:      root,
		timeout:   timeout,
		oracles:   map[workloadSpec]*oracleResult{},
	}
}

func (r *scenarioRunner) close() {
	if r.binDir != "" {
		os.RemoveAll(r.binDir)
	}
}

// buildJob regenerates a workload spec's input deterministically — the
// same construction ampcrun and the perf gate use, so a spec plus seed
// always yields byte-identical inputs.
func buildJob(spec workloadSpec) (ampc.Job, int, int, error) {
	job := ampc.Job{Algo: spec.Algo}
	r := ampc.NewRNG(spec.Seed, 0x7)
	if spec.Kind == "list" {
		next := make([]int, spec.N)
		for i := 0; i < spec.N-1; i++ {
			next[i] = i + 1
		}
		if spec.N > 0 {
			next[spec.N-1] = -1
		}
		job.Next = next
		return job, spec.N, 0, nil
	}
	g, err := makeGraph(spec.Kind, spec.N, spec.M, r)
	if err != nil {
		return ampc.Job{}, 0, 0, err
	}
	algoSpec, ok := ampc.Lookup(spec.Algo)
	if !ok {
		return ampc.Job{}, 0, 0, fmt.Errorf("unknown algorithm %q", spec.Algo)
	}
	if algoSpec.Input == ampc.InputWeightedGraph {
		job.Weighted = ampc.WithRandomWeights(g, r)
	} else {
		job.Graph = g
	}
	return job, g.N(), g.M(), nil
}

// oracle returns the mem-backend reference output for a workload spec,
// oracle-checked against the sequential implementation and cached across
// cells and scenarios.
func (r *scenarioRunner) oracle(spec workloadSpec) (*oracleResult, error) {
	if o, ok := r.oracles[spec]; ok {
		return o, nil
	}
	job, _, _, err := buildJob(spec)
	if err != nil {
		return nil, err
	}
	job.Check = true
	eng := ampc.NewEngine(ampc.EngineOptions{Defaults: ampc.Options{
		Epsilon: spec.Epsilon, Seed: spec.Seed, Backend: "mem",
	}})
	res, err := eng.Run(context.Background(), job)
	if err != nil {
		return nil, fmt.Errorf("mem oracle for %s/%s: %w", spec.Algo, spec.Kind, err)
	}
	o := &oracleResult{labels: res.Labels, summary: res.Summary}
	r.oracles[spec] = o
	return o, nil
}

// startFleet launches the scenario's shard fleet in the configured mode.
func (r *scenarioRunner) startFleet(sc scenario) (chaosFleet, error) {
	if r.fleetMode == "proc" {
		if err := r.buildShardd(); err != nil {
			return nil, err
		}
		return newProcFleet(r.sharddBin, sc.Servers, sc.Faults)
	}
	cfgs := make([]rpc.ServerConfig, sc.Servers)
	for _, f := range sc.Faults {
		if f.Server < 0 || f.Server >= sc.Servers {
			return nil, fmt.Errorf("scenario %s: fault server %d outside fleet of %d", sc.Name, f.Server, sc.Servers)
		}
		cfgs[f.Server].FaultLatency = f.Latency
		cfgs[f.Server].FaultDrop = f.Drop
		cfgs[f.Server].FaultSeed = f.Seed
	}
	return rpc.StartFleet(cfgs)
}

// buildShardd compiles cmd/shardd once per benchgate invocation so proc
// fleets spawn a real server binary, not `go run` wrappers whose pid is
// not the server's (signals must hit shardd itself).
func (r *scenarioRunner) buildShardd() error {
	if r.sharddBin != "" {
		return nil
	}
	dir, err := os.MkdirTemp("", "benchgate-shardd-")
	if err != nil {
		return err
	}
	bin := filepath.Join(dir, "shardd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/shardd")
	cmd.Dir = r.root
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("go build ./cmd/shardd: %v\n%s", err, out)
	}
	r.sharddBin, r.binDir = bin, dir
	return nil
}

// scenarioCell is one executed cell: the emitted bench line plus the
// verdict inputs the caller needs for gating and the summary table.
type scenarioCell struct {
	line   benchLine
	failed bool // outcome was not the expected one
}

// run executes every workload × workers cell of a scenario against a
// fresh fleet per cell (chaos mutates fleet state, so cells never share
// one) and returns the emitted lines.
func (r *scenarioRunner) run(sc scenario) ([]scenarioCell, error) {
	var cells []scenarioCell
	for _, spec := range sc.Workloads {
		want, err := r.oracle(spec)
		if err != nil {
			return nil, err
		}
		for _, workers := range sc.Workers {
			cell, err := r.runCell(sc, spec, workers, want)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// chaosInjector fires a scenario's chaos schedule from the engine's round
// observer: after round k completes — synchronously, before any round k+1
// work starts — every action scheduled at k runs against the fleet.
type chaosInjector struct {
	mu      sync.Mutex
	fleet   chaosFleet
	pending []chaosAction
	rounds  int
	fired   []string
	errs    []error
}

func (c *chaosInjector) observe(ampc.RoundEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds++
	for len(c.pending) > 0 && c.pending[0].Round <= c.rounds {
		a := c.pending[0]
		c.pending = c.pending[1:]
		var err error
		switch a.Kind {
		case "kill":
			err = c.fleet.Kill(a.Server)
		case "restart":
			err = c.fleet.Restart(a.Server)
		case "pause":
			err = c.fleet.Pause(a.Server)
		case "resume":
			err = c.fleet.Resume(a.Server)
		default:
			err = fmt.Errorf("unknown chaos kind %q", a.Kind)
		}
		c.fired = append(c.fired, a.String())
		if err != nil {
			c.errs = append(c.errs, fmt.Errorf("%s: %w", a, err))
		}
	}
}

// report returns what fired, what never got the chance to, and any action
// errors, for the cell verdict.
func (c *chaosInjector) report() (fired []string, unfired []chaosAction, errs []error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired, c.pending, c.errs
}

// runCell executes one workload × workers cell: fresh fleet, chaos
// injected between rounds, output verified against the mem oracle.
func (r *scenarioRunner) runCell(sc scenario, spec workloadSpec, workers int, want *oracleResult) (scenarioCell, error) {
	job, n, m, err := buildJob(spec)
	if err != nil {
		return scenarioCell{}, err
	}
	fleet, err := r.startFleet(sc)
	if err != nil {
		return scenarioCell{}, fmt.Errorf("scenario %s: fleet: %w", sc.Name, err)
	}
	defer fleet.Close()

	inject := &chaosInjector{fleet: fleet, pending: append([]chaosAction(nil), sc.Chaos...)}
	eng := ampc.NewEngine(ampc.EngineOptions{
		Defaults: ampc.Options{
			Epsilon: spec.Epsilon, Seed: spec.Seed, Workers: workers,
			Backend: "rpc", Servers: fleet.Addrs(), Replication: sc.Replication,
			RPCTimeout: sc.RPCTimeout, RPCDownCooldown: sc.RPCDownCooldown,
		},
		Observer: inject.observe,
	})
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	start := time.Now()
	res, runErr := eng.Run(ctx, job)
	wall := time.Since(start)

	line := benchLine{
		Algo: spec.Algo, Backend: "rpc", Workload: spec.Kind, N: n, M: m,
		Epsilon: spec.Epsilon, Seed: spec.Seed, Workers: workers,
		Scenario: sc.Name, Check: ampc.CheckSkipped.String(),
		WallMS: float64(wall.Microseconds()) / 1000,
	}
	fired, unfired, chaosErrs := inject.report()
	line.ChaosActions = fired
	if res != nil {
		t := res.Telemetry
		line.Rounds, line.Phases = t.Rounds, t.Phases
		line.TotalQueries, line.TotalWrites = t.TotalQueries, t.TotalWrites
		line.MaxMachineQueries, line.MaxShardLoad = t.MaxMachineQueries, t.MaxShardLoad
		line.CacheHits, line.RPCFrames = t.CacheHits, t.RPCFrames
		line.P, line.S = t.P, t.S
		line.ExecMS = float64(t.ExecuteTime.Microseconds()) / 1000
		line.FreezeMS = float64(t.FreezeTime.Microseconds()) / 1000
		line.FreezeMergeMS = float64(t.FreezeMergeTime.Microseconds()) / 1000
		line.FreezeBuildMS = float64(t.FreezeBuildTime.Microseconds()) / 1000
		line.PublishMS = float64(t.PublishTime.Microseconds()) / 1000
	}

	line.Outcome = cellOutcome(sc, spec, res, runErr, want, unfired, chaosErrs, ctx)
	if line.Outcome == "ok" || (sc.ExpectUnavailable && line.Outcome == "unavailable") {
		if !sc.ExpectUnavailable {
			line.Check = ampc.CheckPassed.String()
		}
		return scenarioCell{line: line}, nil
	}
	return scenarioCell{line: line, failed: true}, nil
}

// cellOutcome classifies one cell run: "ok" (completed, byte-identical
// labels, full chaos schedule fired), "unavailable" (failed cleanly with
// the typed backend-unavailable error after the full schedule fired), or
// "fail: <reason>".
func cellOutcome(sc scenario, spec workloadSpec, res *ampc.Result, runErr error,
	want *oracleResult, unfired []chaosAction, chaosErrs []error, ctx context.Context) string {
	if len(chaosErrs) > 0 {
		return fmt.Sprintf("fail: chaos action: %v", chaosErrs[0])
	}
	if runErr != nil {
		switch {
		case errors.Is(runErr, dds.ErrBackendUnavailable):
			if !sc.ExpectUnavailable {
				return fmt.Sprintf("fail: backend unavailable: %v", runErr)
			}
			if len(unfired) > 0 {
				return fmt.Sprintf("fail: unavailable before chaos completed (%d action(s) unfired)", len(unfired))
			}
			return "unavailable"
		case ctx.Err() != nil:
			return fmt.Sprintf("fail: timed out after %v (hang is a bug, not a degraded mode)", sc.cellTimeoutHint())
		default:
			return fmt.Sprintf("fail: %v", runErr)
		}
	}
	if sc.ExpectUnavailable {
		return "fail: run completed but scenario expects a clean backend-unavailable failure"
	}
	if len(unfired) > 0 {
		return fmt.Sprintf("fail: run finished after %d rounds before %d chaos action(s) fired (first: %s)",
			roundsOf(res), len(unfired), unfired[0])
	}
	if res.Summary != want.summary {
		return fmt.Sprintf("fail: summary diverged from mem oracle: %q != %q", res.Summary, want.summary)
	}
	if len(res.Labels) != len(want.labels) {
		return fmt.Sprintf("fail: %d labels, mem oracle has %d", len(res.Labels), len(want.labels))
	}
	for i := range res.Labels {
		if res.Labels[i] != want.labels[i] {
			return fmt.Sprintf("fail: label[%d] = %d diverged from mem oracle's %d", i, res.Labels[i], want.labels[i])
		}
	}
	return "ok"
}

func roundsOf(res *ampc.Result) int {
	if res == nil {
		return 0
	}
	return res.Telemetry.Rounds
}

// cellTimeoutHint names the timeout in failure messages without threading
// the runner through; scenarios share one -scenario-timeout.
func (sc scenario) cellTimeoutHint() string { return "-scenario-timeout" }

// procFleet drives real shardd processes: kill is SIGKILL, restart
// re-spawns the binary on the original port, pause/resume are
// SIGSTOP/SIGCONT (unix only; see proc_unix.go / proc_other.go). This is
// the fleet the CI restart scenario uses, so the kill-and-relaunch path is
// exercised against actual processes, not in-process stand-ins.
type procFleet struct {
	bin    string
	faults map[int]serverFault
	mu     sync.Mutex
	addrs  []string
	procs  []*exec.Cmd // nil while killed
	paused []bool
}

func newProcFleet(bin string, n int, faults []serverFault) (*procFleet, error) {
	f := &procFleet{
		bin:    bin,
		faults: map[int]serverFault{},
		addrs:  make([]string, n),
		procs:  make([]*exec.Cmd, n),
		paused: make([]bool, n),
	}
	for _, fl := range faults {
		if fl.Server < 0 || fl.Server >= n {
			return nil, fmt.Errorf("fault server %d outside fleet of %d", fl.Server, n)
		}
		f.faults[fl.Server] = fl
	}
	for i := 0; i < n; i++ {
		if err := f.spawn(i, "127.0.0.1:0"); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// spawn launches server i on addr, scrapes the resolved address from the
// process's first stdout line (shardd prints it once the listener is up),
// and confirms liveness with a protocol ping. Callers hold no lock; the
// slot update at the end takes it.
func (f *procFleet) spawn(i int, addr string) error {
	args := []string{"-listen", addr, "-quiet"}
	if fl, ok := f.faults[i]; ok {
		if fl.Latency > 0 {
			args = append(args, "-fault-latency", fl.Latency.String())
		}
		if fl.Drop > 0 {
			args = append(args, "-fault-drop", fmt.Sprint(fl.Drop), "-fault-seed", fmt.Sprint(fl.Seed))
		}
	}
	cmd := exec.Command(f.bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn shardd %d: %w", i, err)
	}
	resolved, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("shardd %d exited before reporting its address: %v", i, err)
	}
	resolved = resolved[:len(resolved)-1]
	var pingErr error
	for attempt := 0; attempt < 20; attempt++ {
		if pingErr = rpc.Ping(resolved, time.Second); pingErr == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if pingErr != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("shardd %d on %s never became reachable: %v", i, resolved, pingErr)
	}
	f.mu.Lock()
	f.addrs[i] = resolved
	f.procs[i] = cmd
	f.paused[i] = false
	f.mu.Unlock()
	return nil
}

func (f *procFleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.addrs...)
}

func (f *procFleet) Kill(i int) error {
	f.mu.Lock()
	cmd := f.procs[i]
	f.procs[i] = nil
	f.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("shardd %d already killed", i)
	}
	// SIGKILL lands even on a SIGSTOPped process, so a paused straggler
	// still dies here.
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait()
	return nil
}

func (f *procFleet) Restart(i int) error {
	f.mu.Lock()
	running := f.procs[i] != nil
	addr := f.addrs[i]
	f.mu.Unlock()
	if running {
		return fmt.Errorf("shardd %d still running", i)
	}
	return f.spawn(i, addr)
}

func (f *procFleet) Pause(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.procs[i] == nil {
		return fmt.Errorf("shardd %d is killed, cannot pause", i)
	}
	if err := sigstop(f.procs[i].Process); err != nil {
		return err
	}
	f.paused[i] = true
	return nil
}

func (f *procFleet) Resume(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.procs[i] == nil {
		return fmt.Errorf("shardd %d is killed, cannot resume", i)
	}
	if err := sigcont(f.procs[i].Process); err != nil {
		return err
	}
	f.paused[i] = false
	return nil
}

func (f *procFleet) Close() error {
	f.mu.Lock()
	procs := append([]*exec.Cmd(nil), f.procs...)
	for i := range f.procs {
		f.procs[i] = nil
	}
	f.mu.Unlock()
	var first error
	for _, cmd := range procs {
		if cmd == nil {
			continue
		}
		if err := cmd.Process.Kill(); err != nil && first == nil {
			first = err
		}
		cmd.Wait()
	}
	return first
}

// scenarioWallBound is the gate bound for a scenario cell: chaos timings
// are far noisier than healthy-path phase times (failover waits, process
// respawns), so scenarios gate end-to-end wall time with their own factor
// and floor.
func scenarioWallBound(base benchLine, factor, floorMS float64) float64 {
	return factor*base.WallMS + floorMS
}
