package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"strings"
)

// outOfCoreConfig carries the -outofcore* flag values into outOfCoreMain.
type outOfCoreConfig struct {
	baseline   string
	root       string
	reps       int
	maxM       int
	pubFactor  float64
	pubFloorMS float64
	rssFactor  float64
	rssFloorMB float64
	out        string
	summary    string
}

// outOfCoreRow is one out-of-core comparison for the summary table.
type outOfCoreRow struct {
	base, got benchLine
	gated     bool
	verdict   string
}

// outOfCoreMain is the -outofcore gate: it replays every baseline record
// marked {"record":"outofcore"} — streamed mgnm connectivity under the file
// backend with drop residency — and fails when rss_peak_mb or publish_ms
// regresses beyond its bound. RSS is the tight bound (1.5x + 256MB);
// publish gets 2x + 500ms because multi-second disk- and GC-bound phases
// under a memory ceiling swing with scheduler and collector timing. Each measurement is a fresh ampcrun
// subprocess, so the kernel's VmHWM is that run's own high-water mark, not
// this gate's; a GOMEMLIMIT in the environment is inherited, which is how
// CI additionally bounds the heap outright. Records above -outofcore-max-m
// (the committed 1e8-edge evidence lines) are reported without re-running.
func outOfCoreMain(cfg outOfCoreConfig) int {
	recs, err := readOutOfCore(cfg.baseline)
	if err != nil {
		log.Printf("benchgate: %v", err)
		return 1
	}
	if len(recs) == 0 {
		log.Printf("benchgate: %s holds no outofcore records", cfg.baseline)
		return 1
	}
	var outF *os.File
	if cfg.out != "" {
		outF, err = os.OpenFile(cfg.out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Printf("benchgate: %v", err)
			return 1
		}
		defer outF.Close()
	}
	failed := 0
	var rows []outOfCoreRow
	for _, base := range recs {
		if base.M > cfg.maxM {
			fmt.Printf("%-14s %-5s n=%-7d m=%-10d rss %8.1fMB publish %8.1fms  report-only (m above -outofcore-max-m)\n",
				base.Algo, "ooc", base.N, base.M, base.RSSPeakMB, base.PublishMS)
			rows = append(rows, outOfCoreRow{base: base, got: base, verdict: "report-only"})
			continue
		}
		got, err := measureOutOfCore(base, cfg.root, cfg.reps)
		if err != nil {
			log.Printf("benchgate: outofcore %s n=%d m=%d: %v", base.Algo, base.N, base.M, err)
			return 1
		}
		rssBound := cfg.rssFactor*base.RSSPeakMB + cfg.rssFloorMB
		pubBound := cfg.pubFactor*base.PublishMS + cfg.pubFloorMS
		verdict := "ok"
		switch {
		case base.RSSPeakMB > 0 && got.RSSPeakMB > rssBound:
			verdict = fmt.Sprintf("FAIL rss %.1fMB > %.1fMB", got.RSSPeakMB, rssBound)
			failed++
		case got.PublishMS > pubBound:
			verdict = fmt.Sprintf("FAIL publish %.1fms > %.1fms", got.PublishMS, pubBound)
			failed++
		}
		fmt.Printf("%-14s %-5s n=%-7d m=%-10d rss %8.1fMB (base %8.1f)  publish %8.1fms (base %8.1f)  %s\n",
			base.Algo, "ooc", base.N, base.M, got.RSSPeakMB, base.RSSPeakMB, got.PublishMS, base.PublishMS, verdict)
		rows = append(rows, outOfCoreRow{base: base, got: got, gated: true, verdict: verdict})
		if outF != nil {
			enc, err := json.Marshal(got)
			if err != nil {
				log.Printf("benchgate: %v", err)
				return 1
			}
			if _, err := outF.Write(append(enc, '\n')); err != nil {
				log.Printf("benchgate: %v", err)
				return 1
			}
		}
	}
	if cfg.summary != "" {
		if err := writeOutOfCoreSummary(cfg.summary, rows); err != nil {
			log.Printf("benchgate: step summary: %v", err)
		}
	}
	if failed > 0 {
		fmt.Printf("benchgate: %d out-of-core record(s) regressed beyond bounds (rss %.0f%%+%.0fMB, publish %.0f%%+%.0fms)\n",
			failed, (cfg.rssFactor-1)*100, cfg.rssFloorMB, (cfg.pubFactor-1)*100, cfg.pubFloorMS)
		return 1
	}
	fmt.Println("benchgate: all out-of-core records within bounds")
	return 0
}

// measureOutOfCore re-runs one out-of-core record through a fresh ampcrun
// process reps times, keeping the minimum rss/publish/wall observed. The
// oracle check (union-find replay of the stream) runs inside ampcrun,
// outside its timed window, so a passing measurement is also a correctness
// check of the streamed path.
func measureOutOfCore(base benchLine, root string, reps int) (benchLine, error) {
	if reps < 1 {
		reps = 1
	}
	backend := baseBackend(base)
	residency := base.Residency
	if residency == "" && backend == "file" {
		residency = "drop"
	}
	got := base
	got.Backend, got.Residency = backend, residency
	got.RSSPeakMB = math.Inf(1)
	got.PublishMS, got.WallMS, got.ExecMS, got.FreezeMS = math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		cmd := exec.Command("go", "run", "./cmd/ampcrun",
			"-algo", base.Algo, "-graph", base.Workload,
			"-n", fmt.Sprint(base.N), "-m", fmt.Sprint(base.M),
			"-eps", fmt.Sprint(base.Epsilon), "-seed", fmt.Sprint(base.Seed),
			"-backend", backend, "-residency", residency, "-bench")
		cmd.Dir = root
		out, err := cmd.Output()
		if err != nil {
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				return benchLine{}, fmt.Errorf("ampcrun: %v\n%s%s", err, out, ee.Stderr)
			}
			return benchLine{}, fmt.Errorf("ampcrun: %v", err)
		}
		line := lastJSONLine(string(out))
		if line == "" {
			return benchLine{}, fmt.Errorf("ampcrun emitted no JSON line:\n%s", out)
		}
		var rec benchLine
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return benchLine{}, fmt.Errorf("parsing ampcrun output %q: %w", line, err)
		}
		got.RSSPeakMB = math.Min(got.RSSPeakMB, rec.RSSPeakMB)
		got.PublishMS = math.Min(got.PublishMS, rec.PublishMS)
		got.WallMS = math.Min(got.WallMS, rec.WallMS)
		got.ExecMS = math.Min(got.ExecMS, rec.ExecMS)
		got.FreezeMS = math.Min(got.FreezeMS, rec.FreezeMS)
		got.Rounds, got.Phases = rec.Rounds, rec.Phases
		got.TotalQueries, got.TotalWrites = rec.TotalQueries, rec.TotalWrites
		got.P, got.S = rec.P, rec.S
		got.Check = rec.Check
	}
	return got, nil
}

// readOutOfCore extracts the {"record":"outofcore"} lines of a trajectory.
func readOutOfCore(path string) ([]benchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []benchLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var l benchLine
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if l.Record == "outofcore" && l.Algo != "" && l.N > 0 {
			recs = append(recs, l)
		}
	}
	return recs, sc.Err()
}

// writeOutOfCoreSummary appends the out-of-core delta table to the job
// summary file.
func writeOutOfCoreSummary(path string, rows []outOfCoreRow) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	delta := func(base, got float64) string {
		if base <= 0 || math.IsInf(got, 1) {
			return "–"
		}
		return fmt.Sprintf("%+.0f%%", (got/base-1)*100)
	}
	fmt.Fprintf(f, "### benchgate out-of-core\n\n")
	fmt.Fprintf(f, "| algo | n | m | rss base (MB) | rss now (MB) | Δ | publish base (ms) | now (ms) | Δ | verdict |\n")
	fmt.Fprintf(f, "|---|--:|--:|--:|--:|--:|--:|--:|--:|---|\n")
	for _, r := range rows {
		fmt.Fprintf(f, "| %s | %d | %d | %.1f | %.1f | %s | %.1f | %.1f | %s | %s |\n",
			r.got.Algo, r.got.N, r.got.M,
			r.base.RSSPeakMB, r.got.RSSPeakMB, delta(r.base.RSSPeakMB, r.got.RSSPeakMB),
			r.base.PublishMS, r.got.PublishMS, delta(r.base.PublishMS, r.got.PublishMS),
			r.verdict)
	}
	fmt.Fprintln(f)
	return nil
}
