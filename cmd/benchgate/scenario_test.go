package main

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ampc"
)

// TestScenarioPlanDeterminism pins the planning contract the CI grid
// relies on: the same scenario name and scale always resolve to an
// identical plan — same workload specs, same fault profiles, and the same
// chaos-action schedule in the same order.
func TestScenarioPlanDeterminism(t *testing.T) {
	for _, name := range scenarioNames() {
		for _, scale := range []float64{1, 0.25} {
			a, err := planScenario(name, scale)
			if err != nil {
				t.Fatal(err)
			}
			b, err := planScenario(name, scale)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("scenario %s at scale %g replans differently:\n%+v\n%+v", name, scale, a, b)
			}
			if !reflect.DeepEqual(a.Chaos, b.Chaos) {
				t.Errorf("scenario %s chaos schedule differs across plans", name)
			}
		}
	}
}

// TestScenarioWorkloadGraphDeterminism is the property test over 2 seeds:
// every graph workload of every scenario, regenerated from its spec with
// the same seed, serializes to byte-identical edge lists — and a seed
// change actually changes the graph, so the determinism is not vacuous.
func TestScenarioWorkloadGraphDeterminism(t *testing.T) {
	edgeBytes := func(spec workloadSpec) []byte {
		t.Helper()
		job, _, _, err := buildJob(spec)
		if err != nil {
			t.Fatalf("%s/%s: %v", spec.Algo, spec.Kind, err)
		}
		g := job.Graph
		if g == nil && job.Weighted != nil {
			g = job.Weighted.Graph
		}
		if g == nil {
			return nil // list workloads have no graph
		}
		var buf bytes.Buffer
		if err := ampc.WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, sc := range namedScenarios(0.1) {
		for _, spec := range sc.Workloads {
			if spec.Kind == "list" {
				continue
			}
			for _, seedShift := range []uint64{0, 1} {
				s := spec
				s.Seed += seedShift
				if !bytes.Equal(edgeBytes(s), edgeBytes(s)) {
					t.Errorf("%s %s/%s seed %d: regenerated graph differs", sc.Name, s.Algo, s.Kind, s.Seed)
				}
			}
			shifted := spec
			shifted.Seed++
			if bytes.Equal(edgeBytes(spec), edgeBytes(shifted)) {
				t.Errorf("%s %s/%s: seed change did not change the graph", sc.Name, spec.Algo, spec.Kind)
			}
		}
	}
}

// tinyScenario shrinks a planned scenario to test size and replaces its
// workload sweep with one gnm cell, keeping the chaos schedule intact.
func tinyScenario(t *testing.T, name string, workers []int) scenario {
	t.Helper()
	sc, err := planScenario(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc.Workloads = []workloadSpec{{Algo: "connectivity", Kind: "gnm", N: 2000, M: 8000, Epsilon: 0.5, Seed: 7}}
	sc.Workers = workers
	return sc
}

// TestScenarioRestartByteIdentical runs the restart scenario — kill a
// replica mid-run, relaunch it two rounds later — against an in-process
// fleet at workers 1 and 8 and requires every cell to complete with
// byte-identical labels versus the mem oracle and the full chaos schedule
// fired.
func TestScenarioRestartByteIdentical(t *testing.T) {
	sc := tinyScenario(t, "restart", []int{1, 8})
	runner := newScenarioRunner("inproc", "../..", time.Minute)
	defer runner.close()
	cells, err := runner.run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, cell := range cells {
		if cell.failed || cell.line.Outcome != "ok" {
			t.Errorf("workers=%d outcome %q, want ok", cell.line.Workers, cell.line.Outcome)
		}
		if got := len(cell.line.ChaosActions); got != len(sc.Chaos) {
			t.Errorf("workers=%d fired %d chaos actions, want %d", cell.line.Workers, got, len(sc.Chaos))
		}
	}
}

// TestScenarioBlackoutCleanUnavailable pins the failure contract: killing
// the only replica must surface as the typed backend-unavailable outcome —
// never a hang (the runner would hit its timeout and fail) and never a
// wrong answer.
func TestScenarioBlackoutCleanUnavailable(t *testing.T) {
	sc := tinyScenario(t, "blackout", []int{1})
	runner := newScenarioRunner("inproc", "../..", time.Minute)
	defer runner.close()
	cells, err := runner.run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	if cells[0].failed || cells[0].line.Outcome != "unavailable" {
		t.Errorf("outcome %q (failed=%v), want clean unavailable", cells[0].line.Outcome, cells[0].failed)
	}
}
