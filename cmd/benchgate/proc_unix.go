//go:build unix

package main

import (
	"os"
	"syscall"
)

// sigstop freezes a shardd process: its sockets stay open but no request
// is answered until sigcont — the real-process form of Server.Pause.
func sigstop(p *os.Process) error { return p.Signal(syscall.SIGSTOP) }

// sigcont thaws a SIGSTOPped shardd process; held requests then complete.
func sigcont(p *os.Process) error { return p.Signal(syscall.SIGCONT) }
