// Command benchgate is the engine-level perf regression gate from the
// ROADMAP: it replays the workload lines of a committed bench trajectory
// (BENCH_PR*.json, written by ampcrun -bench-out) through the Engine and
// fails — exit status 1 — when a workload's execute phase or its combined
// freeze+publish phase regresses beyond the allowed factor over its
// baseline. The trajectory's gobench records gate too: each one re-runs
// its go-test micro-benchmark (WriteFreeze, RoundOverhead, Get, ...) and
// compares the minimum ns/op against factor*baseline+floor, so a
// storage-engine micro-regression fails CI even when the workload lines
// absorb it.
//
// Usage:
//
//	benchgate -baseline BENCH_PR5.json
//	benchgate -baseline BENCH_PR5.json -factor 1.25 -floor-ms 40 -reps 3
//	benchgate -baseline BENCH_PR4.json -out BENCH_PR5.json -backends mem,file
//	benchgate -baseline BENCH_PR6.json -backends mem,file,rpc
//	benchgate -baseline BENCH_PR5.json -gobench=false    # workload lines only
//	benchgate -baseline BENCH_PR10.json -outofcore       # streamed-ingest RSS/publish gate
//
// Every measured backend gates against the baseline line recorded for the
// same (algorithm, backend) pair, so a file-path regression fails CI just
// like a mem-path one; a backend with no baseline line runs report-only.
// The rpc backend measures against the shardd fleet named by -rpc-servers,
// or against three in-process loopback servers spawned for the run when the
// flag is empty — self-contained, but still paying full serialization,
// protocol and socket cost per read.
// -out appends every measured line to a new trajectory file in the same
// format ampcrun emits, so the gate's output becomes the next PR's
// committed baseline. Freeze and publish gate as a sum because write-behind
// publishing deliberately moves serialization cost between the two phases.
//
// Each workload runs -reps times and the minimum phase times compare
// against factor*baseline + floor; the floor absorbs scheduler noise on
// small absolute numbers (CI machines are shared), the factor catches real
// regressions on the big ones.
//
// When $GITHUB_STEP_SUMMARY is set (or -summary names a file), the gate
// also appends a per-workload markdown delta table for the CI job summary.
//
// # Scenario mode
//
// -scenario <name> (or -scenarios name,name / -scenarios all) switches the
// binary into the chaos orchestrator (scenario.go, orchestrator.go): each
// named scenario launches a shard fleet — in-process loopback servers, or
// real shardd processes with -scenario-fleet proc — runs declared
// workloads through the Engine with chaos actions (kill, restart, pause,
// resume) injected between rounds, and verifies every cell against the
// mem-backend oracle: byte-identical labels, or a clean typed
// backend-unavailable failure for blackout scenarios. Cells emit the same
// bench JSON lines with scenario/chaos_actions/workers/outcome fields, so
// a committed trajectory holding scenario lines gates degraded-mode wall
// time on later runs. In scenario mode -baseline is optional.
//
//	benchgate -scenario restart -scenario-fleet proc
//	benchgate -scenarios all -scenario-scale 0.25 -out scenario-records.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ampc"
	"ampc/internal/rpc"
	"ampc/internal/sysmem"
)

// benchLine mirrors the JSON schema of ampcrun -bench lines. Meta records
// do not gate; gobench records gate through the go-test bench runner below.
type benchLine struct {
	Algo              string  `json:"algo"`
	Backend           string  `json:"backend,omitempty"`
	Workload          string  `json:"workload"`
	N                 int     `json:"n"`
	M                 int     `json:"m"`
	Epsilon           float64 `json:"eps"`
	Seed              uint64  `json:"seed"`
	Rounds            int     `json:"rounds"`
	Phases            int     `json:"phases"`
	TotalQueries      int64   `json:"queries"`
	TotalWrites       int64   `json:"writes,omitempty"`
	MaxMachineQueries int     `json:"max_machine_queries"`
	MaxShardLoad      int64   `json:"max_shard_load"`
	CacheHits         int64   `json:"cache_hits,omitempty"`
	RPCFrames         int64   `json:"rpc_frames,omitempty"`
	P                 int     `json:"p"`
	S                 int     `json:"s"`
	WallMS            float64 `json:"wall_ms"`
	ExecMS            float64 `json:"exec_ms"`
	FreezeMS          float64 `json:"freeze_ms"`
	FreezeMergeMS     float64 `json:"freeze_merge_ms,omitempty"`
	FreezeBuildMS     float64 `json:"freeze_build_ms,omitempty"`
	PublishMS         float64 `json:"publish_ms"`
	RSSPeakMB         float64 `json:"rss_peak_mb,omitempty"`
	Check             string  `json:"check"`

	// Out-of-core records ({"record":"outofcore", ...}) carry the marker
	// and the residency mode they ran under; the normal workload gate skips
	// them (they can be far too large to replay per-backend) and the
	// -outofcore mode gates them through ampcrun subprocesses instead.
	Record    string `json:"record,omitempty"`
	Residency string `json:"residency,omitempty"`

	// Scenario cells (emitted by the chaos orchestrator) carry four extra
	// fields: which named scenario produced the line, the chaos actions
	// that actually fired, the worker-pool size of the cell, and the
	// verified outcome ("ok", "unavailable", or "fail: ..."). Healthy
	// perf-gate lines omit all four, so old trajectories parse unchanged.
	Workers      int      `json:"workers,omitempty"`
	Scenario     string   `json:"scenario,omitempty"`
	ChaosActions []string `json:"chaos_actions,omitempty"`
	Outcome      string   `json:"outcome,omitempty"`
}

// gobenchRecord is a committed go-test micro-benchmark measurement:
// {"record":"gobench","bench":"BenchmarkWriteFreeze","pkg":"internal/ampc",
// "ns_op":...}. The gate re-runs the named benchmark through `go test
// -bench` and compares the minimum observed ns/op against its baseline, so
// a storage-engine micro-regression (a slower WriteFreeze, a slower Get)
// fails CI even when the workload lines absorb it.
type gobenchRecord struct {
	Record   string  `json:"record"`
	PR       int     `json:"pr,omitempty"`
	Bench    string  `json:"bench"`
	Pkg      string  `json:"pkg"`
	BaseNsOp float64 `json:"base_ns_op,omitempty"`
	NsOp     float64 `json:"ns_op"`
	Speedup  float64 `json:"speedup,omitempty"`
}

// storeMS returns the line's combined freeze+publish cost: the full price of
// turning a round's writes into the next round's readable store. Baselines
// written before publish_ms existed count their whole cost under freeze.
func (l benchLine) storeMS() float64 { return l.FreezeMS + l.PublishMS }

// servingRecord mirrors the JSON line `ampcd -selfcheck` emits: a
// serving-latency measurement ({"record":"serving", ..., "query_p50_us"}).
// The gate re-runs the selfcheck and compares the minimum observed p50
// point-query latency against its baseline, so a regression on the warm
// read path (store lookup, handler dispatch, HTTP serving) fails CI even
// though no workload line sees it.
type servingRecord struct {
	Record     string  `json:"record"`
	Algo       string  `json:"algo"`
	Backend    string  `json:"backend"`
	Workload   string  `json:"workload"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	Epsilon    float64 `json:"eps"`
	Seed       uint64  `json:"seed"`
	Queries    int     `json:"queries"`
	QueryP50US float64 `json:"query_p50_us"`
	QueryP90US float64 `json:"query_p90_us"`
	QueryP99US float64 `json:"query_p99_us"`
	RunMS      float64 `json:"run_ms"`
	WallMS     float64 `json:"wall_ms"`
	Check      string  `json:"check"`
}

func main() {
	var (
		baseline   = flag.String("baseline", "", "committed trajectory file to gate against (required)")
		factor     = flag.Float64("factor", 1.25, "fail when exec or freeze+publish exceeds factor*baseline+floor")
		floorMS    = flag.Float64("floor-ms", 40, "absolute slack in ms added to every bound (absorbs scheduler noise)")
		reps       = flag.Int("reps", 3, "runs per workload; the minimum times gate")
		out        = flag.String("out", "", "append every measured bench line to this trajectory file")
		backends   = flag.String("backends", "mem,file", "comma-separated backends to measure; each gates when the baseline has a matching line")
		summary    = flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"), "append a markdown delta table to this file (default: $GITHUB_STEP_SUMMARY)")
		gobench    = flag.Bool("gobench", true, "also re-run and gate the baseline's gobench micro-benchmark records via `go test -bench`")
		gbFactor   = flag.Float64("gobench-factor", 1.5, "fail when a micro-benchmark's min ns/op exceeds factor*baseline+floor")
		gbFloorNS  = flag.Float64("gobench-floor-ns", 1000, "absolute slack in ns added to every micro-benchmark bound")
		gbPkgRoot  = flag.String("gobench-root", ".", "module directory go test runs in for gobench records")
		gbBenchSec = flag.Float64("gobench-benchtime", 1, "seconds per micro-benchmark rep")
		rpcServers = flag.String("rpc-servers", "", "comma-separated shardd addresses for the rpc backend (default: spawn 3 in-process loopback servers)")
		rpcReplic  = flag.Int("rpc-replication", 1, "shard copies across the rpc fleet")
		serving    = flag.Bool("serving", true, "also re-run and gate the baseline's serving records via `ampcd -selfcheck`")
		svFactor   = flag.Float64("serving-factor", 2.0, "fail when the serving p50 exceeds factor*baseline+floor")
		svFloorUS  = flag.Float64("serving-floor-us", 200, "absolute slack in µs added to every serving bound (shared-runner jitter)")

		outofcore    = flag.Bool("outofcore", false, "run the out-of-core gate instead of the perf gate: replay the baseline's outofcore records (streamed mgnm ingest) through ampcrun subprocesses and gate rss_peak_mb and publish_ms")
		oocMaxM      = flag.Int("outofcore-max-m", 20_000_000, "replay only outofcore records with m at or below this; larger lines are committed evidence and report-only")
		oocRSSFactor = flag.Float64("outofcore-rss-factor", 1.5, "fail when an out-of-core run's rss_peak_mb exceeds factor*baseline+floor")
		oocRSSFloor  = flag.Float64("outofcore-rss-floor-mb", 256, "absolute slack in MiB added to every out-of-core RSS bound")
		oocPubFactor = flag.Float64("outofcore-pub-factor", 2.0, "fail when an out-of-core run's publish_ms exceeds factor*baseline+floor (multi-second disk- and GC-bound phases under a memory ceiling are noisy; rss is the tight bound)")
		oocPubFloor  = flag.Float64("outofcore-pub-floor-ms", 500, "absolute slack in ms added to every out-of-core publish bound")

		scenarioName  = flag.String("scenario", "", "run one named chaos scenario instead of the perf gate (baseline, degraded, partition, restart, straggler, blackout, highload)")
		scenarioList  = flag.String("scenarios", "", `comma-separated scenario names, or "all", to run several`)
		scenarioScale = flag.Float64("scenario-scale", 1.0, "multiply scenario workload sizes (CI runs the grid at 0.25)")
		scenarioFleet = flag.String("scenario-fleet", "inproc", "shard fleet for scenarios: inproc (loopback servers in this process), proc (real shardd processes: SIGKILL/SIGSTOP chaos), or auto (proc on unix)")
		scenarioTO    = flag.Duration("scenario-timeout", 2*time.Minute, "per-cell wall clock limit; hitting it fails the cell (hangs are bugs, not degraded modes)")
		scFactor      = flag.Float64("scenario-factor", 2.0, "fail when a scenario cell's wall time exceeds factor*baseline+floor (chaos timings are noisy)")
		scFloorMS     = flag.Float64("scenario-floor-ms", 500, "absolute slack in ms added to every scenario wall-time bound")
	)
	flag.Parse()
	if *scenarioName != "" || *scenarioList != "" {
		list := *scenarioList
		if *scenarioName != "" {
			if list != "" {
				list = *scenarioName + "," + list
			} else {
				list = *scenarioName
			}
		}
		os.Exit(scenarioMain(scenarioGateConfig{
			list: list, scale: *scenarioScale, fleetMode: *scenarioFleet, root: *gbPkgRoot,
			timeout: *scenarioTO, baseline: *baseline, factor: *scFactor, floorMS: *scFloorMS,
			out: *out, summary: *summary,
		}))
	}
	if *baseline == "" {
		log.Fatal("benchgate: -baseline is required")
	}
	if *outofcore {
		os.Exit(outOfCoreMain(outOfCoreConfig{
			baseline: *baseline, root: *gbPkgRoot, reps: *reps, maxM: *oocMaxM,
			pubFactor: *oocPubFactor, pubFloorMS: *oocPubFloor,
			rssFactor: *oocRSSFactor, rssFloorMB: *oocRSSFloor,
			out: *out, summary: *summary,
		}))
	}

	memLines, byBackend, gobenchBase, servingBase, err := readBaseline(*baseline)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}
	if len(memLines) == 0 {
		log.Fatalf("benchgate: %s holds no gateable workload lines", *baseline)
	}

	var outF *os.File
	if *out != "" {
		outF, err = os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("benchgate: %v", err)
		}
		defer outF.Close()
	}

	rpcOpts := rpcOptions{servers: splitAddrs(*rpcServers), replication: *rpcReplic}
	if strings.Contains(*backends, "rpc") && len(rpcOpts.servers) == 0 {
		fleet, err := rpc.StartFleet(make([]rpc.ServerConfig, 3))
		if err != nil {
			log.Fatalf("benchgate: loopback shardd fleet: %v", err)
		}
		defer fleet.Close()
		rpcOpts.servers = fleet.Addrs()
		fmt.Printf("rpc backend: spawned %d loopback shardd servers (%s)\n", len(rpcOpts.servers), strings.Join(rpcOpts.servers, ", "))
	}

	failed := 0
	var rows []summaryRow
	for _, mem := range memLines {
		for _, backend := range strings.Split(*backends, ",") {
			backend = strings.TrimSpace(backend)
			if backend == "" {
				continue
			}
			// The mem line defines the workload; the gate bound comes from
			// the baseline line recorded for this backend, when one exists.
			base, gates := byBackend[backendKey{mem.Algo, mem.Workload, mem.N, backend, "", 0}]
			if !gates {
				base = mem
			}
			got, err := measure(mem, backend, *reps, rpcOpts)
			if errors.Is(err, errUnknownWorkload) {
				// A future ampcrun may record workload kinds this gate does
				// not know how to regenerate; that must not fail every
				// subsequent CI run, only surface loudly.
				fmt.Printf("%-14s %-5s n=%-7d SKIPPED: %v\n", mem.Algo, backend, mem.N, err)
				continue
			}
			if err != nil {
				log.Fatalf("benchgate: %s/%s: %v", mem.Algo, backend, err)
			}
			if outF != nil {
				enc, err := json.Marshal(got)
				if err != nil {
					log.Fatalf("benchgate: %v", err)
				}
				if _, err := outF.Write(append(enc, '\n')); err != nil {
					log.Fatalf("benchgate: %v", err)
				}
			}
			verdict := "report-only"
			if gates {
				execBound := *factor*base.ExecMS + *floorMS
				storeBound := *factor*base.storeMS() + *floorMS
				switch {
				case got.ExecMS > execBound:
					verdict = fmt.Sprintf("FAIL exec %.1fms > %.1fms", got.ExecMS, execBound)
					failed++
				case got.storeMS() > storeBound:
					verdict = fmt.Sprintf("FAIL freeze+publish %.1fms > %.1fms", got.storeMS(), storeBound)
					failed++
				default:
					verdict = "ok"
				}
			}
			fmt.Printf("%-14s %-5s n=%-7d exec %8.1fms (base %8.1f)  freeze+publish %8.1fms (base %8.1f)  %s\n",
				mem.Algo, backend, mem.N, got.ExecMS, base.ExecMS, got.storeMS(), base.storeMS(), verdict)
			rows = append(rows, summaryRow{base: base, got: got, gated: gates, verdict: verdict})
		}
	}
	var gbRows []gobenchRow
	if *gobench && len(gobenchBase) > 0 {
		gbRows, err = runGobench(gobenchBase, *gbPkgRoot, *reps, *gbBenchSec)
		if err != nil {
			log.Fatalf("benchgate: gobench: %v", err)
		}
		for i := range gbRows {
			r := &gbRows[i]
			bound := *gbFactor*r.base.NsOp + *gbFloorNS
			switch {
			case math.IsInf(r.got, 1):
				r.verdict = "SKIPPED: benchmark not found"
			case r.got > bound:
				r.verdict = fmt.Sprintf("FAIL %.0fns/op > %.0fns/op", r.got, bound)
				failed++
			default:
				r.verdict = "ok"
			}
			fmt.Printf("%-34s %-13s %10.0f ns/op (base %10.0f)  %s\n",
				r.base.Bench, r.base.Pkg, r.got, r.base.NsOp, r.verdict)
			if outF != nil && !math.IsInf(r.got, 1) {
				rec := gobenchRecord{
					Record: "gobench", Bench: r.base.Bench, Pkg: r.base.Pkg,
					BaseNsOp: r.base.NsOp, NsOp: r.got,
					Speedup: math.Round(r.base.NsOp/r.got*100) / 100,
				}
				enc, err := json.Marshal(rec)
				if err != nil {
					log.Fatalf("benchgate: %v", err)
				}
				if _, err := outF.Write(append(enc, '\n')); err != nil {
					log.Fatalf("benchgate: %v", err)
				}
			}
		}
	}
	var svRows []servingRow
	if *serving && len(servingBase) > 0 {
		for _, sb := range servingBase {
			got, err := measureServing(sb, *gbPkgRoot, *reps)
			if err != nil {
				log.Fatalf("benchgate: serving: %v", err)
			}
			bound := *svFactor*sb.QueryP50US + *svFloorUS
			row := servingRow{base: sb, got: got}
			if got.QueryP50US > bound {
				row.verdict = fmt.Sprintf("FAIL p50 %.0fµs > %.0fµs", got.QueryP50US, bound)
				failed++
			} else {
				row.verdict = "ok"
			}
			fmt.Printf("%-14s %-5s n=%-7d query p50 %8.1fµs (base %8.1f)  p90 %8.1fµs  %s\n",
				"serving:"+sb.Algo, sb.Backend, sb.N, got.QueryP50US, sb.QueryP50US, got.QueryP90US, row.verdict)
			svRows = append(svRows, row)
			if outF != nil {
				enc, err := json.Marshal(got)
				if err != nil {
					log.Fatalf("benchgate: %v", err)
				}
				if _, err := outF.Write(append(enc, '\n')); err != nil {
					log.Fatalf("benchgate: %v", err)
				}
			}
		}
	}
	if *summary != "" {
		if err := writeSummary(*summary, rows, gbRows, svRows); err != nil {
			log.Printf("benchgate: step summary: %v", err)
		}
	}
	if failed > 0 {
		fmt.Printf("benchgate: %d record(s) regressed beyond bounds (workloads %.0f%%+%.0fms, gobench %.0f%%+%.0fns)\n",
			failed, (*factor-1)*100, *floorMS, (*gbFactor-1)*100, *gbFloorNS)
		os.Exit(1)
	}
	fmt.Println("benchgate: all workloads within bounds")
}

// gobenchRow is one micro-benchmark comparison: the committed baseline
// record and the minimum ns/op observed by re-running it now.
type gobenchRow struct {
	base    gobenchRecord
	got     float64 // +Inf when the benchmark no longer exists
	verdict string
}

// runGobench re-measures every baseline gobench record: one `go test -run
// ^$ -bench <union>` invocation per package (each benchmark runs reps
// times; the minimum ns/op gates, mirroring the workload policy). A record
// whose benchmark has disappeared is reported as skipped rather than
// failing CI, like an unknown workload kind.
func runGobench(base []gobenchRecord, root string, reps int, benchSec float64) ([]gobenchRow, error) {
	if reps < 1 {
		reps = 1
	}
	byPkg := make(map[string][]gobenchRecord)
	for _, r := range base {
		byPkg[r.Pkg] = append(byPkg[r.Pkg], r)
	}
	rows := make([]gobenchRow, 0, len(base))
	pkgs := make([]string, 0, len(byPkg))
	for pkg := range byPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		recs := byPkg[pkg]
		// Union of the records' top-level benchmark names, exact-anchored.
		tops := make(map[string]bool)
		for _, r := range recs {
			tops[strings.SplitN(r.Bench, "/", 2)[0]] = true
		}
		names := make([]string, 0, len(tops))
		for name := range tops {
			names = append(names, regexp.QuoteMeta(name))
		}
		sort.Strings(names)
		pattern := "^(" + strings.Join(names, "|") + ")$"
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", pattern,
			"-benchtime", fmt.Sprintf("%gs", benchSec),
			"-count", fmt.Sprint(reps),
			"./"+filepath.ToSlash(pkg))
		cmd.Dir = root
		outBytes, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench %s in %s: %v\n%s", pattern, pkg, err, outBytes)
		}
		mins := parseGobenchOutput(string(outBytes))
		for _, r := range recs {
			got, ok := mins[r.Bench]
			if !ok {
				got = math.Inf(1)
			}
			rows = append(rows, gobenchRow{base: r, got: got})
		}
	}
	return rows, nil
}

// parseGobenchOutput extracts the minimum ns/op per benchmark name from go
// test -bench output, stripping the trailing -GOMAXPROCS suffix.
func parseGobenchOutput(out string) map[string]float64 {
	mins := make(map[string]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := mins[name]; !ok || ns < cur {
			mins[name] = ns
		}
	}
	return mins
}

// servingRow is one serving-latency comparison for the summary table.
type servingRow struct {
	base, got servingRecord
	verdict   string
}

// measureServing re-runs one serving record through `go run ./cmd/ampcd
// -selfcheck` reps times and keeps the minimum observed latency percentiles
// — the same min-gates policy the workload lines use. The selfcheck itself
// verifies the run against the sequential oracle and cross-checks every
// point query, so a passing measurement is also a correctness smoke.
func measureServing(base servingRecord, root string, reps int) (servingRecord, error) {
	if reps < 1 {
		reps = 1
	}
	got := base
	got.QueryP50US, got.QueryP90US, got.QueryP99US = math.Inf(1), math.Inf(1), math.Inf(1)
	got.RunMS, got.WallMS = math.Inf(1), math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		cmd := exec.Command("go", "run", "./cmd/ampcd", "-selfcheck",
			"-n", fmt.Sprint(base.N), "-m", fmt.Sprint(base.M),
			"-seed", fmt.Sprint(base.Seed), "-queries", fmt.Sprint(base.Queries),
			"-eps", fmt.Sprint(base.Epsilon))
		cmd.Dir = root
		out, err := cmd.Output()
		if err != nil {
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				return servingRecord{}, fmt.Errorf("ampcd -selfcheck: %v\n%s%s", err, out, ee.Stderr)
			}
			return servingRecord{}, fmt.Errorf("ampcd -selfcheck: %v", err)
		}
		var rec servingRecord
		line := lastJSONLine(string(out))
		if line == "" {
			return servingRecord{}, fmt.Errorf("ampcd -selfcheck emitted no JSON line:\n%s", out)
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return servingRecord{}, fmt.Errorf("parsing selfcheck output %q: %w", line, err)
		}
		got.QueryP50US = math.Min(got.QueryP50US, rec.QueryP50US)
		got.QueryP90US = math.Min(got.QueryP90US, rec.QueryP90US)
		got.QueryP99US = math.Min(got.QueryP99US, rec.QueryP99US)
		got.RunMS = math.Min(got.RunMS, rec.RunMS)
		got.WallMS = math.Min(got.WallMS, rec.WallMS)
		got.Check = rec.Check
	}
	return got, nil
}

// lastJSONLine returns the last line of out that looks like a JSON object.
func lastJSONLine(out string) string {
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if l := strings.TrimSpace(lines[i]); strings.HasPrefix(l, "{") {
			return l
		}
	}
	return ""
}

// summaryRow is one line of the markdown delta table.
type summaryRow struct {
	base, got benchLine
	gated     bool
	verdict   string
}

// writeSummary appends the delta tables — workload lines, gobench
// micro-records and serving records — in GitHub-flavored markdown, to the
// job summary file.
func writeSummary(path string, rows []summaryRow, gbRows []gobenchRow, svRows []servingRow) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	delta := func(base, got float64) string {
		if base <= 0 || math.IsInf(got, 1) {
			return "–"
		}
		return fmt.Sprintf("%+.0f%%", (got/base-1)*100)
	}
	fmt.Fprintf(f, "### benchgate\n\n")
	fmt.Fprintf(f, "| algo | backend | n | exec base (ms) | exec now (ms) | Δ | freeze+publish base (ms) | now (ms) | Δ | verdict |\n")
	fmt.Fprintf(f, "|---|---|--:|--:|--:|--:|--:|--:|--:|---|\n")
	for _, r := range rows {
		fmt.Fprintf(f, "| %s | %s | %d | %.1f | %.1f | %s | %.1f | %.1f | %s | %s |\n",
			r.got.Algo, r.got.Backend, r.got.N,
			r.base.ExecMS, r.got.ExecMS, delta(r.base.ExecMS, r.got.ExecMS),
			r.base.storeMS(), r.got.storeMS(), delta(r.base.storeMS(), r.got.storeMS()),
			r.verdict)
	}
	fmt.Fprintln(f)
	if len(gbRows) > 0 {
		fmt.Fprintf(f, "| benchmark | pkg | base (ns/op) | now (ns/op) | Δ | verdict |\n")
		fmt.Fprintf(f, "|---|---|--:|--:|--:|---|\n")
		for _, r := range gbRows {
			now := "–"
			if !math.IsInf(r.got, 1) {
				now = fmt.Sprintf("%.0f", r.got)
			}
			fmt.Fprintf(f, "| %s | %s | %.0f | %s | %s | %s |\n",
				r.base.Bench, r.base.Pkg, r.base.NsOp, now, delta(r.base.NsOp, r.got), r.verdict)
		}
		fmt.Fprintln(f)
	}
	if len(svRows) > 0 {
		fmt.Fprintf(f, "| serving | n | queries | p50 base (µs) | p50 now (µs) | Δ | p90 now (µs) | verdict |\n")
		fmt.Fprintf(f, "|---|--:|--:|--:|--:|--:|--:|---|\n")
		for _, r := range svRows {
			fmt.Fprintf(f, "| %s | %d | %d | %.1f | %.1f | %s | %.1f | %s |\n",
				r.base.Algo, r.base.N, r.base.Queries,
				r.base.QueryP50US, r.got.QueryP50US, delta(r.base.QueryP50US, r.got.QueryP50US),
				r.got.QueryP90US, r.verdict)
		}
		fmt.Fprintln(f)
	}
	return nil
}

// baseBackend normalizes the baseline's backend field: lines written before
// the field existed are in-memory.
func baseBackend(l benchLine) string {
	if l.Backend == "" {
		return "mem"
	}
	return l.Backend
}

// backendKey identifies one baseline line: a workload measured on a
// backend, within a scenario cell when the line came from the chaos
// orchestrator (healthy perf-gate lines have scenario "" and workers 0).
type backendKey struct {
	algo     string
	workload string
	n        int
	backend  string
	scenario string
	workers  int
}

// readBaseline extracts the gateable records from a trajectory file: the
// workload lines (mem lines define the workload set — every trajectory
// records them — and the full per-backend map supplies each backend's own
// gate bound), the gobench micro-benchmark records, and the ampcd serving
// records. Meta records are skipped.
func readBaseline(path string) ([]benchLine, map[backendKey]benchLine, []gobenchRecord, []servingRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer f.Close()
	var memLines []benchLine
	var gobench []gobenchRecord
	var servings []servingRecord
	byBackend := make(map[backendKey]benchLine)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var record struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal([]byte(text), &record); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		switch record.Record {
		case "gobench":
			var g gobenchRecord
			if err := json.Unmarshal([]byte(text), &g); err != nil {
				return nil, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			if g.Bench != "" && g.Pkg != "" && g.NsOp > 0 {
				gobench = append(gobench, g)
			}
			continue
		case "serving":
			var s servingRecord
			if err := json.Unmarshal([]byte(text), &s); err != nil {
				return nil, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			if s.Algo != "" && s.N > 0 && s.Queries > 0 && s.QueryP50US > 0 {
				servings = append(servings, s)
			}
			continue
		}
		if record.Record != "" {
			continue
		}
		var l benchLine
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if l.Algo == "" {
			continue
		}
		if l.Scenario != "" {
			// Scenario cells never define perf-gate workloads; they only
			// supply wall-time bounds for matching scenario cells, and only
			// when the recorded run reached its expected outcome — a failed
			// cell in an old trajectory must not become a bound.
			if l.Outcome == "ok" || l.Outcome == "unavailable" {
				byBackend[backendKey{l.Algo, l.Workload, l.N, baseBackend(l), l.Scenario, l.Workers}] = l
			}
			continue
		}
		if baseBackend(l) == "mem" {
			memLines = append(memLines, l)
		}
		byBackend[backendKey{l.Algo, l.Workload, l.N, baseBackend(l), "", l.Workers}] = l
	}
	return memLines, byBackend, gobench, servings, sc.Err()
}

// rpcOptions carries the rpc backend's fleet configuration into measure.
type rpcOptions struct {
	servers     []string
	replication int
}

// splitAddrs parses a comma-separated address list, dropping blanks.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// measure runs the baseline line's workload on the given backend reps times
// and returns the line with the minimum exec/freeze/wall observed — the
// same measurement ampcrun -bench takes, with the oracle check outside the
// timed window.
func measure(base benchLine, backend string, reps int, rpcOpts rpcOptions) (benchLine, error) {
	spec, ok := ampc.Lookup(base.Algo)
	if !ok {
		return benchLine{}, fmt.Errorf("unknown algorithm %q", base.Algo)
	}
	job := ampc.Job{Algo: base.Algo}
	r := ampc.NewRNG(base.Seed, 0x7)
	switch spec.Input {
	case ampc.InputList:
		next := make([]int, base.N)
		for i := 0; i < base.N-1; i++ {
			next[i] = i + 1
		}
		if base.N > 0 {
			next[base.N-1] = -1
		}
		job.Next = next
	case ampc.InputGraph:
		if base.Workload == "mgnm" {
			job.Stream = ampc.StreamGNM(base.N, base.M, base.Seed)
			break
		}
		g, err := makeGraph(base.Workload, base.N, base.M, r)
		if err != nil {
			return benchLine{}, err
		}
		job.Graph = g
	case ampc.InputWeightedGraph:
		g, err := makeGraph(base.Workload, base.N, base.M, r)
		if err != nil {
			return benchLine{}, err
		}
		job.Weighted = ampc.WithRandomWeights(g, r)
	}

	eng := ampc.NewEngine(ampc.EngineOptions{
		Defaults: ampc.Options{
			Epsilon: base.Epsilon, Seed: base.Seed, Backend: backend,
			Servers: rpcOpts.servers, Replication: rpcOpts.replication,
		},
	})
	got := base
	got.Backend = backend
	got.WallMS, got.ExecMS, got.FreezeMS, got.PublishMS = math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
	got.FreezeMergeMS, got.FreezeBuildMS = math.Inf(1), math.Inf(1)
	if reps < 1 {
		reps = 1
	}
	var last *ampc.Result
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		res, err := eng.Run(context.Background(), job)
		wall := time.Since(start)
		if err != nil {
			return benchLine{}, err
		}
		last = res
		t := res.Telemetry
		got.WallMS = math.Min(got.WallMS, float64(wall.Microseconds())/1000)
		got.ExecMS = math.Min(got.ExecMS, float64(t.ExecuteTime.Microseconds())/1000)
		got.FreezeMS = math.Min(got.FreezeMS, float64(t.FreezeTime.Microseconds())/1000)
		got.FreezeMergeMS = math.Min(got.FreezeMergeMS, float64(t.FreezeMergeTime.Microseconds())/1000)
		got.FreezeBuildMS = math.Min(got.FreezeBuildMS, float64(t.FreezeBuildTime.Microseconds())/1000)
		got.PublishMS = math.Min(got.PublishMS, float64(t.PublishTime.Microseconds())/1000)
		got.Rounds, got.Phases = t.Rounds, t.Phases
		got.TotalQueries, got.TotalWrites = t.TotalQueries, t.TotalWrites
		got.MaxMachineQueries = t.MaxMachineQueries
		got.MaxShardLoad, got.P, got.S = t.MaxShardLoad, t.P, t.S
		got.CacheHits, got.RPCFrames = t.CacheHits, t.RPCFrames
	}
	// Process-wide high-water mark: monotone across a gate run, so the
	// value attributes growth to the first workload that caused it.
	got.RSSPeakMB = math.Round(sysmem.PeakRSSMB()*10) / 10
	got.Check = ampc.CheckSkipped.String()
	if spec.Check != nil {
		if err := spec.Check(job, last); err != nil {
			return benchLine{}, fmt.Errorf("oracle check failed: %w", err)
		}
		got.Check = ampc.CheckPassed.String()
	}
	return got, nil
}

// errUnknownWorkload marks a baseline workload kind this gate cannot
// regenerate; such lines are skipped with a warning rather than failing CI.
var errUnknownWorkload = fmt.Errorf("workload kind not regenerable")

func makeGraph(kind string, n, m int, r *ampc.RNG) (*ampc.Graph, error) {
	switch kind {
	case "gnm":
		return ampc.GNM(n, m, r), nil
	case "cgnm":
		return ampc.ConnectedGNM(n, m, r), nil
	case "powerlaw":
		return ampc.PowerLaw(n, m, r), nil
	case "skew":
		return ampc.SkewedDegree(n, m, ampc.HubCount(n), r), nil
	case "cycle":
		return ampc.TwoCycleInstance(n, true, r), nil
	case "cycle2":
		return ampc.TwoCycleInstance(n, false, r), nil
	case "path":
		return ampc.Path(n), nil
	case "star":
		return ampc.Star(n), nil
	case "tree":
		return ampc.RandomTree(n, r), nil
	case "clique":
		return ampc.Clique(n), nil
	default:
		return nil, fmt.Errorf("%w: %q", errUnknownWorkload, kind)
	}
}

// scenarioGateConfig carries the -scenario* flag values into scenarioMain.
type scenarioGateConfig struct {
	list      string
	scale     float64
	fleetMode string
	root      string
	timeout   time.Duration
	baseline  string
	factor    float64
	floorMS   float64
	out       string
	summary   string
}

// scenarioRow is one scenario cell in the markdown summary.
type scenarioRow struct {
	base    benchLine
	got     benchLine
	gated   bool
	verdict string
}

// scenarioMain runs the chaos-scenario grid and returns the process exit
// code: 0 when every cell reached its expected outcome and stayed inside
// its wall-time bound, 1 otherwise. Unlike the perf gate, -baseline is
// optional here — without one every cell still verifies correctness
// against the mem oracle but reports wall time without gating it.
func scenarioMain(cfg scenarioGateConfig) int {
	scenarios, err := resolveScenarios(cfg.list, cfg.scale)
	if err != nil {
		log.Printf("benchgate: %v", err)
		return 1
	}
	var byBackend map[backendKey]benchLine
	if cfg.baseline != "" {
		_, byBackend, _, _, err = readBaseline(cfg.baseline)
		if err != nil {
			log.Printf("benchgate: %v", err)
			return 1
		}
	}
	var outF *os.File
	if cfg.out != "" {
		outF, err = os.OpenFile(cfg.out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Printf("benchgate: %v", err)
			return 1
		}
		defer outF.Close()
	}
	fleetMode := cfg.fleetMode
	if fleetMode == "auto" {
		fleetMode = "proc"
		if runtime.GOOS == "windows" {
			fleetMode = "inproc"
		}
	}
	if fleetMode != "proc" && fleetMode != "inproc" {
		log.Printf("benchgate: unknown -scenario-fleet %q (inproc, proc or auto)", cfg.fleetMode)
		return 1
	}

	runner := newScenarioRunner(fleetMode, cfg.root, cfg.timeout)
	defer runner.close()
	failed := 0
	var rows []scenarioRow
	for _, sc := range scenarios {
		fmt.Printf("scenario %-10s fleet=%s servers=%d R=%d  %s\n",
			sc.Name, fleetMode, sc.Servers, sc.Replication, sc.Description)
		cells, err := runner.run(sc)
		if err != nil {
			log.Printf("benchgate: scenario %s: %v", sc.Name, err)
			return 1
		}
		for _, cell := range cells {
			l := cell.line
			base, gates := byBackend[backendKey{l.Algo, l.Workload, l.N, "rpc", l.Scenario, l.Workers}]
			verdict := "report-only"
			switch {
			case cell.failed:
				verdict = "FAIL " + l.Outcome
				failed++
			case gates:
				bound := scenarioWallBound(base, cfg.factor, cfg.floorMS)
				if l.WallMS > bound {
					verdict = fmt.Sprintf("FAIL wall %.1fms > %.1fms", l.WallMS, bound)
					failed++
				} else {
					verdict = "ok"
				}
			}
			fmt.Printf("  %-14s %-9s n=%-7d workers=%-2d rounds=%-3d wall %8.1fms  chaos=[%s]  %s  %s\n",
				l.Algo, l.Workload, l.N, l.Workers, l.Rounds, l.WallMS,
				strings.Join(l.ChaosActions, " "), l.Outcome, verdict)
			rows = append(rows, scenarioRow{base: base, got: l, gated: gates, verdict: verdict})
			if outF != nil {
				enc, err := json.Marshal(l)
				if err != nil {
					log.Printf("benchgate: %v", err)
					return 1
				}
				if _, err := outF.Write(append(enc, '\n')); err != nil {
					log.Printf("benchgate: %v", err)
					return 1
				}
			}
		}
	}
	if cfg.summary != "" {
		if err := writeScenarioSummary(cfg.summary, rows); err != nil {
			log.Printf("benchgate: step summary: %v", err)
		}
	}
	if failed > 0 {
		fmt.Printf("benchgate: %d scenario cell(s) failed\n", failed)
		return 1
	}
	fmt.Println("benchgate: all scenario cells reached their expected outcome")
	return 0
}

// writeScenarioSummary appends the scenario delta table, grouped by
// scenario name, in GitHub-flavored markdown. Cells with a committed
// baseline show the wall-time delta against it; the rest are report-only,
// which is how future BENCH_PR*.json baselines start gating degraded-mode
// latency: commit a trajectory with scenario lines and matching cells gate
// automatically.
func writeScenarioSummary(path string, rows []scenarioRow) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "### benchgate scenarios\n\n")
	fmt.Fprintf(f, "| scenario | algo | workload | n | workers | rounds | chaos | wall base (ms) | wall now (ms) | Δ | outcome | verdict |\n")
	fmt.Fprintf(f, "|---|---|---|--:|--:|--:|---|--:|--:|--:|---|---|\n")
	lastScenario := ""
	for _, r := range rows {
		name := r.got.Scenario
		if name == lastScenario {
			name = "" // group rows: print the scenario name once per block
		} else {
			lastScenario = name
		}
		baseWall, delta := "–", "–"
		if r.gated && r.base.WallMS > 0 {
			baseWall = fmt.Sprintf("%.1f", r.base.WallMS)
			delta = fmt.Sprintf("%+.0f%%", (r.got.WallMS/r.base.WallMS-1)*100)
		}
		chaos := strings.Join(r.got.ChaosActions, "<br>")
		if chaos == "" {
			chaos = "–"
		}
		fmt.Fprintf(f, "| %s | %s | %s | %d | %d | %d | %s | %s | %.1f | %s | %s | %s |\n",
			name, r.got.Algo, r.got.Workload, r.got.N, r.got.Workers, r.got.Rounds,
			chaos, baseWall, r.got.WallMS, delta, r.got.Outcome, r.verdict)
	}
	fmt.Fprintln(f)
	return nil
}
