// Scenario declarations: each chaos experiment is data — a workload axis
// (which generated inputs), a fault axis (static server faults plus
// orchestrated chaos actions fired between rounds), and a scale axis
// (n/m/eps/workers sweeps) — executed by the orchestrator in
// orchestrator.go. Everything here is pure data and pure planning: given
// the same name and scale, planScenario returns an identical plan, and
// the workload specs regenerate byte-identical graphs from their seeds.
// The determinism test in scenario_test.go pins both properties.
package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// workloadSpec pins one generated input: everything needed to regenerate
// the exact graph (or successor list) from scratch. All fields are
// comparable scalars, so the spec keys the orchestrator's oracle cache.
type workloadSpec struct {
	Algo    string
	Kind    string // makeGraph kind, or "list" for successor-list inputs
	N       int
	M       int
	Epsilon float64
	Seed    uint64
}

// chaosAction is one orchestrated fault: once Round rounds of the observed
// run have completed, Kind fires against fleet server Server. Actions are
// injected synchronously from the engine's round observer, so an action at
// round k happens-before any round k+1 read.
type chaosAction struct {
	Round  int
	Kind   string // "kill", "restart", "pause", "resume"
	Server int
}

func (a chaosAction) String() string {
	return fmt.Sprintf("%s:server%d@round%d", a.Kind, a.Server, a.Round)
}

// serverFault is a static fault profile one fleet server runs with for the
// scenario's whole lifetime — shardd's -fault-latency / -fault-drop knobs,
// applied to every request that server handles.
type serverFault struct {
	Server  int
	Latency time.Duration
	Drop    float64
	Seed    int64
}

// scenario declares one named chaos experiment as data. The orchestrator
// runs every workload × workers cell against a fresh fleet, fires the
// chaos schedule, and verifies the output against the mem-backend oracle:
// byte-identical labels, or — when ExpectUnavailable is set — a clean
// typed dds.ErrBackendUnavailable. Never a hang, never corruption.
type scenario struct {
	Name        string
	Description string
	Workloads   []workloadSpec
	Workers     []int // worker-pool sweep; 0 = GOMAXPROCS
	Servers     int
	Replication int
	Faults      []serverFault
	Chaos       []chaosAction
	// RPCTimeout / RPCDownCooldown tune the client's failure detector for
	// the scenario; zero keeps the engine defaults. Straggler scenarios
	// need a short timeout so a paused server costs milliseconds, not the
	// default two seconds per held request.
	RPCTimeout      time.Duration
	RPCDownCooldown time.Duration
	// ExpectUnavailable flips the pass condition: the run must fail
	// cleanly with dds.ErrBackendUnavailable instead of completing —
	// the contract that losing the last replica is a typed error, not a
	// hang or a wrong answer.
	ExpectUnavailable bool
}

// scaleInt shrinks a full-scale size by the scenario scale factor with a
// floor, so CI can run the same scenarios at -scenario-scale 0.25 without
// degenerating below the sizes where the algorithms still take many
// rounds (chaos actions scheduled at round k must have a round k to fire
// in).
func scaleInt(v int, scale float64, floor int) int {
	s := int(math.Round(float64(v) * scale))
	if s < floor {
		return floor
	}
	return s
}

// namedScenarios returns every declared scenario at the given scale
// factor, in stable order. Scale multiplies n and m only; the fault and
// chaos axes are scale-invariant so a CI run at 0.25 exercises exactly
// the failure sequence the full-scale run does.
func namedScenarios(scale float64) []scenario {
	gnm := func(n, m int, seed uint64) workloadSpec {
		return workloadSpec{Algo: "connectivity", Kind: "gnm", N: scaleInt(n, scale, 2000), M: scaleInt(m, scale, 8000), Epsilon: 0.5, Seed: seed}
	}
	return []scenario{
		{
			Name:        "baseline",
			Description: "healthy fleet, workload breadth: gnm, power-law, weighted cgnm, list ranking",
			Workloads: []workloadSpec{
				gnm(20000, 80000, 1),
				{Algo: "connectivity", Kind: "powerlaw", N: scaleInt(20000, scale, 2000), M: scaleInt(80000, scale, 8000), Epsilon: 0.5, Seed: 2},
				{Algo: "msf", Kind: "cgnm", N: scaleInt(10000, scale, 1000), M: scaleInt(40000, scale, 4000), Epsilon: 0.5, Seed: 1},
				{Algo: "listrank", Kind: "list", N: scaleInt(100000, scale, 10000), Epsilon: 0.5, Seed: 1},
			},
			Workers:     []int{0},
			Servers:     3,
			Replication: 2,
		},
		{
			Name:        "degraded",
			Description: "one slow server: 250µs injected latency on every request it handles",
			Workloads:   []workloadSpec{gnm(20000, 80000, 1)},
			Workers:     []int{0},
			Servers:     3,
			Replication: 2,
			// ~100x a loopback round trip — visibly degraded, but below the
			// client timeout so the fleet drags instead of failing over.
			Faults: []serverFault{{Server: 1, Latency: 250 * time.Microsecond}},
		},
		{
			Name:        "partition",
			Description: "primary range unreachable from round 1 on; R=2 reads fail over for the rest of the run",
			Workloads:   []workloadSpec{gnm(20000, 80000, 1)},
			Workers:     []int{0},
			Servers:     3,
			Replication: 2,
			Chaos:       []chaosAction{{Round: 1, Kind: "kill", Server: 0}},
		},
		{
			Name:        "restart",
			Description: "kill a replica at round 2, relaunch it at round 4; it rejoins empty and reads keep failing over",
			Workloads:   []workloadSpec{gnm(20000, 80000, 1)},
			Workers:     []int{0},
			Servers:     3,
			Replication: 2,
			Chaos: []chaosAction{
				{Round: 2, Kind: "kill", Server: 1},
				{Round: 4, Kind: "restart", Server: 1},
			},
		},
		{
			Name:        "straggler",
			Description: "SIGSTOP a server at round 2 (requests held unanswered), SIGCONT it at round 5",
			Workloads:   []workloadSpec{gnm(20000, 80000, 1)},
			Workers:     []int{0},
			Servers:     3,
			Replication: 2,
			Chaos: []chaosAction{
				{Round: 2, Kind: "pause", Server: 2},
				{Round: 5, Kind: "resume", Server: 2},
			},
			RPCTimeout:      150 * time.Millisecond,
			RPCDownCooldown: 50 * time.Millisecond,
		},
		{
			Name:        "blackout",
			Description: "R=1, kill a server at round 2: the run must fail with the typed ErrBackendUnavailable, never hang",
			Workloads:   []workloadSpec{gnm(20000, 80000, 1)},
			Workers:     []int{0},
			Servers:     2,
			Replication: 1,
			Chaos:       []chaosAction{{Round: 2, Kind: "kill", Server: 0}},
			// Fail fast: with the last replica gone there is nothing to
			// wait for, so a short timeout keeps the expected-failure cell
			// cheap.
			RPCTimeout:        200 * time.Millisecond,
			RPCDownCooldown:   50 * time.Millisecond,
			ExpectUnavailable: true,
		},
		{
			Name:        "highload",
			Description: "hub-skewed workload (dup-heavy keys, maximally uneven shard load) at large P, worker sweep",
			Workloads: []workloadSpec{
				{Algo: "connectivity", Kind: "skew", N: scaleInt(20000, scale, 2000), M: scaleInt(80000, scale, 8000), Epsilon: 0.35, Seed: 3},
			},
			Workers:     []int{1, 8},
			Servers:     3,
			Replication: 2,
		},
	}
}

// planScenario resolves one scenario by name at the given scale, with its
// chaos schedule sorted by firing round (stable on declaration order for
// equal rounds). Pure: same (name, scale) → identical plan.
func planScenario(name string, scale float64) (scenario, error) {
	for _, sc := range namedScenarios(scale) {
		if sc.Name == name {
			sort.SliceStable(sc.Chaos, func(i, j int) bool { return sc.Chaos[i].Round < sc.Chaos[j].Round })
			return sc, nil
		}
	}
	return scenario{}, fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(scenarioNames(), ", "))
}

// scenarioNames lists every declared scenario in stable order.
func scenarioNames() []string {
	var names []string
	for _, sc := range namedScenarios(1) {
		names = append(names, sc.Name)
	}
	return names
}

// resolveScenarios expands a -scenarios value: "all", or a comma-separated
// subset of names.
func resolveScenarios(list string, scale float64) ([]scenario, error) {
	if strings.TrimSpace(list) == "all" {
		var all []scenario
		for _, name := range scenarioNames() {
			sc, err := planScenario(name, scale)
			if err != nil {
				return nil, err
			}
			all = append(all, sc)
		}
		return all, nil
	}
	var out []scenario
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sc, err := planScenario(name, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios named (have %s)", strings.Join(scenarioNames(), ", "))
	}
	return out, nil
}
