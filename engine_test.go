package ampc_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ampc"
)

// registryJob builds a small valid input for each registered algorithm, so
// the round-trip test can run every name through Engine.Run. Structured
// inputs (cycles, forests) get matching workloads; everything else gets a
// small random graph.
func registryJob(t *testing.T, name string, spec ampc.AlgorithmSpec) ampc.Job {
	t.Helper()
	r := ampc.NewRNG(42, 0)
	job := ampc.Job{Algo: name, Check: true}
	switch name {
	case "twocycle":
		job.Graph = ampc.TwoCycleInstance(128, false, r)
	case "cycleconn":
		job.Graph = ampc.Union(ampc.Cycle(64), ampc.Cycle(80))
	case "forestconn":
		job.Graph = ampc.RandomForest(200, 5, r)
	default:
		switch spec.Input {
		case ampc.InputGraph:
			job.Graph = ampc.GNM(150, 450, r)
		case ampc.InputWeightedGraph:
			job.Weighted = ampc.WithRandomWeights(ampc.ConnectedGNM(150, 450, r), r)
		case ampc.InputList:
			next := make([]int, 300)
			for i := range next {
				next[i] = i + 1
			}
			next[len(next)-1] = -1
			job.Next = next
		}
	}
	return job
}

// TestRegistryRoundTrip runs every registered algorithm through Engine.Run
// with oracle checks on, and requires the registry to cover the paper's
// algorithm suite (the acceptance bar is >= 10 names).
func TestRegistryRoundTrip(t *testing.T) {
	names := ampc.Algorithms()
	if len(names) < 10 {
		t.Fatalf("only %d registered algorithms: %v", len(names), names)
	}
	eng := ampc.NewEngine(ampc.EngineOptions{Defaults: ampc.Options{Seed: 7}})
	for _, name := range names {
		spec, ok := ampc.Lookup(name)
		if !ok {
			t.Fatalf("Algorithms lists %q but Lookup misses it", name)
		}
		res, err := eng.Run(context.Background(), registryJob(t, name, spec))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Algo != name {
			t.Errorf("%s: result echoes algo %q", name, res.Algo)
		}
		if res.Payload == nil {
			t.Errorf("%s: nil payload", name)
		}
		if res.Summary == "" {
			t.Errorf("%s: empty summary", name)
		}
		if spec.Check != nil && res.Check != ampc.CheckPassed {
			t.Errorf("%s: check status %v, want passed", name, res.Check)
		}
		if res.Telemetry.Rounds == 0 {
			t.Errorf("%s: telemetry reports zero rounds", name)
		}
	}
}

// TestEngineCanceledContext verifies the acceptance criterion: Run with an
// already-canceled context returns promptly with context.Canceled.
func TestEngineCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := ampc.NewEngine(ampc.EngineOptions{})
	r := ampc.NewRNG(1, 0)
	start := time.Now()
	_, err := eng.Run(ctx, ampc.Job{Algo: "connectivity", Graph: ampc.GNM(5000, 20000, r)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("canceled run took %v", elapsed)
	}
}

// cancelMidPhase runs the given job on a large instance and cancels the
// context as soon as the first round completes, so cancellation lands
// mid-run deterministically; the run must abort with context.Canceled.
func cancelMidPhase(t *testing.T, job ampc.Job) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var events int64
	var mu sync.Mutex
	eng := ampc.NewEngine(ampc.EngineOptions{
		Observer: func(ev ampc.RoundEvent) {
			mu.Lock()
			events++
			mu.Unlock()
			once.Do(cancel)
		},
	})
	start := time.Now()
	_, err := eng.Run(ctx, job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to land", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if events == 0 {
		t.Fatal("no rounds observed before cancellation")
	}
}

func TestConnectivityCancellationMidPhase(t *testing.T) {
	r := ampc.NewRNG(3, 0)
	cancelMidPhase(t, ampc.Job{Algo: "connectivity", Graph: ampc.GNM(20000, 80000, r)})
}

func TestMISCancellationMidPhase(t *testing.T) {
	r := ampc.NewRNG(4, 0)
	cancelMidPhase(t, ampc.Job{Algo: "mis", Graph: ampc.GNM(20000, 80000, r)})
}

// TestEngineConcurrentRuns exercises one Engine from many goroutines under
// the concurrency limit; run with -race this doubles as the data-race
// check. Identical seeds must yield identical labelings regardless of
// interleaving.
func TestEngineConcurrentRuns(t *testing.T) {
	r := ampc.NewRNG(9, 0)
	g := ampc.GNM(400, 1200, r)
	eng := ampc.NewEngine(ampc.EngineOptions{
		Defaults:      ampc.Options{Seed: 11},
		MaxConcurrent: 2,
	})
	want, err := eng.Run(context.Background(), ampc.Job{Algo: "connectivity", Graph: g})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			algo := "connectivity"
			if i%2 == 1 {
				algo = "mis"
			}
			res, err := eng.Run(context.Background(), ampc.Job{Algo: algo, Graph: g, Check: true})
			if err != nil {
				errs[i] = err
				return
			}
			if algo == "connectivity" {
				for v, l := range res.Labels {
					if l != want.Labels[v] {
						errs[i] = errors.New("nondeterministic labeling under concurrency")
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestEngineObserverStreams checks that the observer sees the same rounds
// the final telemetry reports, tagged with a consistent job identity.
func TestEngineObserverStreams(t *testing.T) {
	var mu sync.Mutex
	var events []ampc.RoundEvent
	eng := ampc.NewEngine(ampc.EngineOptions{
		Defaults: ampc.Options{Seed: 5},
		Observer: func(ev ampc.RoundEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	r := ampc.NewRNG(5, 0)
	res, err := eng.Run(context.Background(), ampc.Job{Algo: "connectivity", Graph: ampc.GNM(500, 2000, r)})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != res.Telemetry.Rounds {
		t.Fatalf("observer saw %d rounds, telemetry reports %d", len(events), res.Telemetry.Rounds)
	}
	for i, ev := range events {
		if ev.JobID != res.JobID {
			t.Fatalf("event %d has JobID %d, result %d", i, ev.JobID, res.JobID)
		}
		if ev.Algo != "connectivity" {
			t.Fatalf("event %d has algo %q", i, ev.Algo)
		}
		if ev.Round.Name != res.Telemetry.RoundStats[i].Name {
			t.Fatalf("event %d is round %q, telemetry has %q", i, ev.Round.Name, res.Telemetry.RoundStats[i].Name)
		}
	}
}

// TestEngineJobErrors covers the registry's failure modes: unknown names,
// missing inputs, and invalid options surfaced as ErrInvalidOptions.
func TestEngineJobErrors(t *testing.T) {
	eng := ampc.NewEngine(ampc.EngineOptions{})
	ctx := context.Background()
	r := ampc.NewRNG(2, 0)
	g := ampc.GNM(50, 100, r)

	if _, err := eng.Run(ctx, ampc.Job{Algo: "nope", Graph: g}); !errors.Is(err, ampc.ErrUnknownAlgorithm) {
		t.Errorf("unknown algo: err = %v", err)
	} else if !strings.Contains(err.Error(), "connectivity") {
		t.Errorf("unknown-algo error does not list registered names: %v", err)
	}
	if _, err := eng.Run(ctx, ampc.Job{Algo: "connectivity"}); !errors.Is(err, ampc.ErrInvalidJob) {
		t.Errorf("missing graph: err = %v", err)
	}
	if _, err := eng.Run(ctx, ampc.Job{}); !errors.Is(err, ampc.ErrInvalidJob) {
		t.Errorf("empty job: err = %v", err)
	}
	if _, err := eng.Run(ctx, ampc.Job{Algo: "msf", Graph: g}); !errors.Is(err, ampc.ErrInvalidJob) {
		t.Errorf("msf without weighted graph: err = %v", err)
	}
	bad := ampc.Options{Epsilon: 1.5}
	if _, err := eng.Run(ctx, ampc.Job{Algo: "connectivity", Graph: g, Opts: &bad}); !errors.Is(err, ampc.ErrInvalidOptions) {
		t.Errorf("epsilon 1.5: err = %v", err)
	}
	neg := ampc.Options{Epsilon: -0.2}
	if _, err := eng.Run(ctx, ampc.Job{Algo: "connectivity", Graph: g, Opts: &neg}); !errors.Is(err, ampc.ErrInvalidOptions) {
		t.Errorf("epsilon -0.2: err = %v", err)
	}
}

// TestPerJobOptionOverride checks Job.Opts replaces the Engine defaults.
func TestPerJobOptionOverride(t *testing.T) {
	eng := ampc.NewEngine(ampc.EngineOptions{Defaults: ampc.Options{Seed: 1, Epsilon: 0.5}})
	r := ampc.NewRNG(8, 0)
	g := ampc.GNM(2000, 6000, r)
	override := ampc.Options{Seed: 1, Epsilon: 0.9}
	res, err := eng.Run(context.Background(), ampc.Job{Algo: "connectivity", Graph: g, Opts: &override})
	if err != nil {
		t.Fatal(err)
	}
	// Epsilon 0.9 gives S = n^0.9, far above the default's n^0.5.
	if res.Telemetry.S <= 64 {
		t.Fatalf("override ignored: S = %d", res.Telemetry.S)
	}
}

// TestEngineStreamJobs covers the Job.Stream wiring: a streamed connectivity
// job runs end to end with the oracle on, the streamed and materialized forms
// of the same graph agree, and the exactly-one-input and accepts-stream rules
// are enforced at validation time.
func TestEngineStreamJobs(t *testing.T) {
	eng := ampc.NewEngine(ampc.EngineOptions{Defaults: ampc.Options{Seed: 4}})
	ctx := context.Background()

	res, err := eng.Run(ctx, ampc.Job{Algo: "connectivity", Stream: ampc.StreamGNM(1200, 3000, 17), Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Check != ampc.CheckPassed {
		t.Fatalf("streamed run check = %v", res.Check)
	}
	if len(res.Labels) != 1200 {
		t.Fatalf("streamed run produced %d labels, want 1200", len(res.Labels))
	}

	// Streaming a materialized graph must find the same components as
	// handing the graph over directly.
	g := ampc.GNM(600, 1500, ampc.NewRNG(9, 0))
	direct, err := eng.Run(ctx, ampc.Job{Algo: "connectivity", Graph: g, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := eng.Run(ctx, ampc.Job{Algo: "connectivity", Stream: ampc.StreamOf(g), Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ampc.SameLabeling(direct.Labels, streamed.Labels) {
		t.Fatal("streamed and direct inputs disagree on components")
	}

	es := ampc.StreamGNM(10, 5, 1)
	if _, err := eng.Run(ctx, ampc.Job{Algo: "connectivity", Graph: g, Stream: es}); !errors.Is(err, ampc.ErrInvalidJob) {
		t.Errorf("graph and stream together: err = %v", err)
	} else if !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("both-inputs error does not explain the rule: %v", err)
	}
	if _, err := eng.Run(ctx, ampc.Job{Algo: "mis", Stream: es}); !errors.Is(err, ampc.ErrInvalidJob) {
		t.Errorf("stream to non-streaming algo: err = %v", err)
	} else if !strings.Contains(err.Error(), "does not accept Job.Stream") {
		t.Errorf("accepts-stream error does not name the rule: %v", err)
	}
}
