// Integration tests through the public facade: end-to-end pipelines that
// combine several algorithms the way an application would, plus
// property-based tests over randomized instances.
package ampc_test

import (
	"testing"
	"testing/quick"

	"ampc"
)

func TestFacadeConnectivityPipeline(t *testing.T) {
	r := ampc.NewRNG(1, 0)
	g := ampc.Union(ampc.ConnectedGNM(500, 1500, r), ampc.Cycle(100), ampc.Star(50))
	g = ampc.Relabel(g, r.Perm(g.N()))
	res, err := ampc.Connectivity(g, ampc.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ampc.SameLabeling(res.Components, ampc.Components(g)) {
		t.Fatal("wrong labeling through facade")
	}
}

func TestFacadeMSFThenBridges(t *testing.T) {
	// Pipeline: build an MSF, then audit the tree — every MSF edge of a
	// connected graph's spanning tree is a bridge of the tree itself.
	r := ampc.NewRNG(2, 0)
	wg := ampc.WithRandomWeights(ampc.ConnectedGNM(300, 900, r), r)
	msf, err := ampc.MSF(wg, ampc.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var treeEdges []ampc.Edge
	for _, e := range msf.Edges {
		treeEdges = append(treeEdges, ampc.Edge{U: e.U, V: e.V}.Canon())
	}
	tree, err := ampc.NewGraph(wg.N(), treeEdges)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := ampc.Biconnectivity(tree, ampc.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(audit.Bridges) != tree.M() {
		t.Fatalf("tree audit found %d bridges, want all %d edges", len(audit.Bridges), tree.M())
	}
}

func TestFacadeMISAndMatchingConsistency(t *testing.T) {
	// The MIS of a graph and the maximal matching interact: matched edges
	// cannot have both endpoints in the MIS.
	r := ampc.NewRNG(3, 0)
	g := ampc.GNM(300, 900, r)
	mis, err := ampc.MIS(g, ampc.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	match, err := ampc.MaximalMatching(g, ampc.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for e, in := range match.Matched {
		if !in {
			continue
		}
		edge := g.Edges()[e]
		if mis.InMIS[edge.U] && mis.InMIS[edge.V] {
			t.Fatalf("matched edge %v has both endpoints in the MIS (independence broken)", edge)
		}
	}
}

func TestFacadeColoringRespectsMIS(t *testing.T) {
	// Color classes are independent sets; class 0 of the greedy coloring
	// under permutation π is exactly LFMIS(g, π).
	r := ampc.NewRNG(4, 0)
	g := ampc.GNM(200, 500, r)
	col, err := ampc.GreedyColoring(g, ampc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	class0 := make([]bool, g.N())
	for v, c := range col.Color {
		class0[v] = c == 0
	}
	if !ampc.IsMIS(g, class0) {
		t.Fatal("color class 0 is not the LFMIS")
	}
}

func TestPropertyTwoCycleAlwaysCorrect(t *testing.T) {
	check := func(seed uint64, sizeRaw uint8, single bool) bool {
		n := (int(sizeRaw)%40 + 4) * 16 // 64..688, always even
		r := ampc.NewRNG(seed, 0)
		g := ampc.TwoCycleInstance(n, single, r)
		res, err := ampc.TwoCycle(g, ampc.Options{Seed: seed})
		if err != nil {
			return false
		}
		return res.SingleCycle == single
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConnectivityAlwaysMatchesBFS(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%150 + 10
		m := int(mRaw) % (2 * n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		r := ampc.NewRNG(seed, 1)
		g := ampc.GNM(n, m, r)
		res, err := ampc.Connectivity(g, ampc.Options{Seed: seed})
		if err != nil {
			return false
		}
		return ampc.SameLabeling(res.Components, ampc.Components(g))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMSFAlwaysMatchesKruskal(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 10
		r := ampc.NewRNG(seed, 2)
		m := n + r.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := ampc.WithRandomWeights(ampc.GNM(n, m, r), r)
		res, err := ampc.MSF(g, ampc.Options{Seed: seed})
		if err != nil {
			return false
		}
		want := ampc.KruskalMSF(g)
		if len(res.Edges) != len(want) {
			return false
		}
		for i := range want {
			if res.Edges[i].Weight != want[i].Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMISAlwaysValid(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%120 + 5
		m := int(mRaw) % (3 * n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		r := ampc.NewRNG(seed, 3)
		g := ampc.GNM(n, m, r)
		res, err := ampc.MIS(g, ampc.Options{Seed: seed})
		if err != nil {
			return false
		}
		return ampc.IsMIS(g, res.InMIS)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyForestConnectivityAlwaysCorrect(t *testing.T) {
	check := func(seed uint64, nRaw, tRaw uint8) bool {
		n := int(nRaw)%200 + 2
		trees := int(tRaw)%n + 1
		r := ampc.NewRNG(seed, 4)
		g := ampc.RandomForest(n, trees, r)
		res, err := ampc.ForestConnectivity(g, ampc.Options{Seed: seed})
		if err != nil {
			return false
		}
		return ampc.SameLabeling(res.Components, ampc.Components(g))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBiconnectivityBridges(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 8
		r := ampc.NewRNG(seed, 5)
		m := n + r.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := ampc.GNM(n, m, r)
		res, err := ampc.Biconnectivity(g, ampc.Options{Seed: seed})
		if err != nil {
			return false
		}
		want := ampc.BridgesOracle(g)
		if len(res.Bridges) != len(want) {
			return false
		}
		for i := range want {
			if res.Bridges[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyListRankingRanksArePermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		r := ampc.NewRNG(seed, 6)
		order := r.Perm(n)
		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[order[i]] = order[i+1]
		}
		next[order[n-1]] = -1
		res, err := ampc.ListRanking(next, ampc.Options{Seed: seed})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, rk := range res.Rank {
			if rk < 0 || rk >= n || seen[rk] {
				return false
			}
			seen[rk] = true
		}
		// Ranks must respect the successor relation.
		for v, u := range next {
			if u != -1 && res.Rank[u] != res.Rank[v]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDeterminismAcrossAlgorithms(t *testing.T) {
	r := ampc.NewRNG(9, 0)
	g := ampc.GNM(150, 400, r)
	for name, run := range map[string]func(seed uint64) interface{}{
		"connectivity": func(s uint64) interface{} {
			res, err := ampc.Connectivity(g, ampc.Options{Seed: s})
			if err != nil {
				t.Fatal(err)
			}
			return res.Telemetry.TotalQueries
		},
		"mis": func(s uint64) interface{} {
			res, err := ampc.MIS(g, ampc.Options{Seed: s})
			if err != nil {
				t.Fatal(err)
			}
			return res.Telemetry.TotalQueries
		},
		"matching": func(s uint64) interface{} {
			res, err := ampc.MaximalMatching(g, ampc.Options{Seed: s})
			if err != nil {
				t.Fatal(err)
			}
			return res.Telemetry.TotalQueries
		},
	} {
		if run(42) != run(42) {
			t.Fatalf("%s: same seed gave different telemetry", name)
		}
	}
}
