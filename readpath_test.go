package ampc_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"ampc"
)

// readPathConfigs is the full read-path acceptance cube: every backend and
// worker count crossed with the worker cache and machine pinning toggles.
type readPathConfig struct {
	backend  string
	workers  int
	noCache  bool
	unpinned bool
}

func readPathConfigs() []readPathConfig {
	var cfgs []readPathConfig
	for _, backend := range []string{ampc.BackendMem, ampc.BackendFile, ampc.BackendRPC} {
		for _, workers := range []int{1, 8} {
			for _, noCache := range []bool{false, true} {
				for _, unpinned := range []bool{false, true} {
					cfgs = append(cfgs, readPathConfig{backend, workers, noCache, unpinned})
				}
			}
		}
	}
	return cfgs
}

// segmentBytes reads every serialized segment file under dir, in sorted path
// order, concatenated — the byte-level identity the file backend must keep
// whatever read-path acceleration is switched on.
func segmentBytes(t *testing.T, dir string) []byte {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".seg" {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no segment files under %s", dir)
	}
	sort.Strings(paths)
	var buf bytes.Buffer
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// TestReadPathDifferential is the acceptance gate for the read-path
// acceleration stack: the per-worker generation cache, pinned machine
// execution and batched store reads are all observable only as speed. Every
// combination of backend, worker count, cache toggle and pinning toggle must
// produce byte-identical labels, payloads, summaries, query accounting —
// and, on the file backend, byte-identical serialized segments. Runs under
// -race in CI, which also exercises the single-flight and shared-cache
// synchronization.
func TestReadPathDifferential(t *testing.T) {
	servers := rpcServers(t)
	r := ampc.NewRNG(6, 2)
	g := ampc.GNM(300, 900, r)
	jobs := []ampc.Job{
		{Algo: "connectivity", Graph: g, Check: true},
		{Algo: "msf", Weighted: ampc.WithRandomWeights(ampc.ConnectedGNM(300, 900, r), r), Check: true},
	}
	for _, job := range jobs {
		job := job
		t.Run(job.Algo, func(t *testing.T) {
			t.Parallel()
			base, basePairs := runBackend(t, job, ampc.Options{Seed: 21, Backend: ampc.BackendMem, Workers: 1, NoWorkerCache: true, Unpinned: true})
			var segWant []byte
			cacheHitsSeen := false
			for _, cfg := range readPathConfigs() {
				opts := ampc.Options{
					Seed: 21, Backend: cfg.backend, Workers: cfg.workers,
					NoWorkerCache: cfg.noCache, Unpinned: cfg.unpinned,
				}
				var storeDir string
				if cfg.backend == ampc.BackendRPC {
					opts.Servers = servers
					opts.Replication = 2
				}
				if cfg.backend == ampc.BackendFile {
					storeDir = t.TempDir()
					opts.StoreDir = storeDir
				}
				label := fmt.Sprintf("%s/workers=%d/noCache=%v/unpinned=%v", cfg.backend, cfg.workers, cfg.noCache, cfg.unpinned)
				res, pairs := runBackend(t, job, opts)
				if !reflect.DeepEqual(res.Labels, base.Labels) {
					t.Errorf("%s: labels differ from baseline", label)
				}
				if !reflect.DeepEqual(normalizePayload(res.Payload), normalizePayload(base.Payload)) {
					t.Errorf("%s: payloads differ from baseline", label)
				}
				if res.Summary != base.Summary || res.Check != base.Check {
					t.Errorf("%s: summary/check %q/%v vs %q/%v", label, res.Summary, res.Check, base.Summary, base.Check)
				}
				if !reflect.DeepEqual(pairs, basePairs) {
					t.Errorf("%s: per-round pair counts differ: %v vs %v", label, pairs, basePairs)
				}
				// The cache and pinning must be invisible to the model's cost
				// accounting, not just to the algorithm outputs.
				bt, rt := base.Telemetry, res.Telemetry
				if rt.TotalQueries != bt.TotalQueries || rt.MaxMachineQueries != bt.MaxMachineQueries ||
					rt.TotalWrites != bt.TotalWrites || rt.MaxShardLoad != bt.MaxShardLoad {
					t.Errorf("%s: accounting differs: queries %d/%d maxMachine %d/%d writes %d/%d maxShard %d/%d",
						label, rt.TotalQueries, bt.TotalQueries, rt.MaxMachineQueries, bt.MaxMachineQueries,
						rt.TotalWrites, bt.TotalWrites, rt.MaxShardLoad, bt.MaxShardLoad)
				}
				if cfg.noCache && rt.CacheHits != 0 {
					t.Errorf("%s: cache disabled but %d hits reported", label, rt.CacheHits)
				}
				if !cfg.noCache && rt.CacheHits > 0 {
					cacheHitsSeen = true
				}
				if cfg.backend == ampc.BackendRPC && rt.RPCFrames == 0 {
					t.Errorf("%s: rpc run reported zero read frames", label)
				}
				if cfg.backend != ampc.BackendRPC && rt.RPCFrames != 0 {
					t.Errorf("%s: non-rpc run reported %d rpc frames", label, rt.RPCFrames)
				}
				if storeDir != "" {
					seg := segmentBytes(t, storeDir)
					if segWant == nil {
						segWant = seg
					} else if !bytes.Equal(seg, segWant) {
						t.Errorf("%s: serialized segment bytes differ from the first file run", label)
					}
				}
			}
			if !cacheHitsSeen {
				t.Error("no cache-enabled configuration reported a single cache hit; the worker cache never engaged")
			}
		})
	}
}
